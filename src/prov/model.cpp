#include "provml/prov/model.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "provml/common/strings.hpp"

namespace provml::prov {

QualifiedName QualifiedName::parse(std::string_view qualified) {
  const std::size_t colon = qualified.find(':');
  if (colon == std::string_view::npos) {
    return QualifiedName{"", std::string(qualified)};
  }
  return QualifiedName{std::string(qualified.substr(0, colon)),
                       std::string(qualified.substr(colon + 1))};
}

const AttributeValue* find_attribute(const Attributes& attrs, std::string_view key) {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr std::array<RelationSpec, kRelationKindCount> kRelationTable{{
    {RelationKind::kUsed, "used", "used", "prov:activity", "prov:entity",
     ElementKind::kActivity, ElementKind::kEntity, true},
    {RelationKind::kWasGeneratedBy, "wasGeneratedBy", "wasGeneratedBy", "prov:entity",
     "prov:activity", ElementKind::kEntity, ElementKind::kActivity, true},
    {RelationKind::kWasInformedBy, "wasInformedBy", "wasInformedBy", "prov:informed",
     "prov:informant", ElementKind::kActivity, ElementKind::kActivity, false},
    {RelationKind::kWasStartedBy, "wasStartedBy", "wasStartedBy", "prov:activity",
     "prov:trigger", ElementKind::kActivity, ElementKind::kEntity, true},
    {RelationKind::kWasEndedBy, "wasEndedBy", "wasEndedBy", "prov:activity", "prov:trigger",
     ElementKind::kActivity, ElementKind::kEntity, true},
    {RelationKind::kWasInvalidatedBy, "wasInvalidatedBy", "wasInvalidatedBy", "prov:entity",
     "prov:activity", ElementKind::kEntity, ElementKind::kActivity, true},
    {RelationKind::kWasDerivedFrom, "wasDerivedFrom", "wasDerivedFrom",
     "prov:generatedEntity", "prov:usedEntity", ElementKind::kEntity, ElementKind::kEntity,
     false},
    {RelationKind::kWasAttributedTo, "wasAttributedTo", "wasAttributedTo", "prov:entity",
     "prov:agent", ElementKind::kEntity, ElementKind::kAgent, false},
    {RelationKind::kWasAssociatedWith, "wasAssociatedWith", "wasAssociatedWith",
     "prov:activity", "prov:agent", ElementKind::kActivity, ElementKind::kAgent, false},
    {RelationKind::kActedOnBehalfOf, "actedOnBehalfOf", "actedOnBehalfOf", "prov:delegate",
     "prov:responsible", ElementKind::kAgent, ElementKind::kAgent, false},
    {RelationKind::kSpecializationOf, "specializationOf", "specializationOf",
     "prov:specificEntity", "prov:generalEntity", ElementKind::kEntity, ElementKind::kEntity,
     false},
    {RelationKind::kAlternateOf, "alternateOf", "alternateOf", "prov:alternate1",
     "prov:alternate2", ElementKind::kEntity, ElementKind::kEntity, false},
    {RelationKind::kHadMember, "hadMember", "hadMember", "prov:collection", "prov:entity",
     ElementKind::kEntity, ElementKind::kEntity, false},
}};

const char* element_kind_name(ElementKind kind) {
  switch (kind) {
    case ElementKind::kEntity: return "entity";
    case ElementKind::kActivity: return "activity";
    case ElementKind::kAgent: return "agent";
  }
  return "?";
}

}  // namespace

const RelationSpec& relation_spec(RelationKind kind) {
  return kRelationTable[static_cast<std::size_t>(kind)];
}

const RelationSpec* relation_spec_by_json_key(std::string_view key) {
  for (const RelationSpec& spec : kRelationTable) {
    if (key == spec.json_key) return &spec;
  }
  return nullptr;
}

Document::Document() : bundles_(std::make_unique<std::vector<std::pair<std::string, Document>>>()) {
  declare_namespace("prov", std::string(kProvNamespace));
  declare_namespace("xsd", std::string(kXsdNamespace));
}

Document::Document(const Document& other)
    : namespaces_(other.namespaces_),
      elements_(other.elements_),
      relations_(other.relations_),
      bundles_(std::make_unique<std::vector<std::pair<std::string, Document>>>(*other.bundles_)),
      blank_counter_(other.blank_counter_) {}

Document& Document::operator=(const Document& other) {
  if (this != &other) {
    namespaces_ = other.namespaces_;
    elements_ = other.elements_;
    relations_ = other.relations_;
    bundles_ = std::make_unique<std::vector<std::pair<std::string, Document>>>(*other.bundles_);
    blank_counter_ = other.blank_counter_;
  }
  return *this;
}

void Document::declare_namespace(const std::string& prefix, const std::string& iri) {
  for (auto& [p, existing] : namespaces_) {
    if (p == prefix) {
      existing = iri;
      return;
    }
  }
  namespaces_.emplace_back(prefix, iri);
}

const std::string* Document::namespace_iri(std::string_view prefix) const {
  for (const auto& [p, iri] : namespaces_) {
    if (p == prefix) return &iri;
  }
  return nullptr;
}

namespace {
Element& upsert_element(std::vector<Element>& elements, ElementKind kind,
                        const std::string& id, Attributes attrs) {
  for (Element& e : elements) {
    if (e.id == id && e.kind == kind) {
      for (auto& kv : attrs) e.attributes.push_back(std::move(kv));
      return e;
    }
  }
  elements.push_back(Element{kind, id, std::move(attrs), "", ""});
  return elements.back();
}
}  // namespace

Element& Document::add_entity(const std::string& id, Attributes attrs) {
  return upsert_element(elements_, ElementKind::kEntity, id, std::move(attrs));
}

Element& Document::add_activity(const std::string& id, Attributes attrs,
                                const std::string& start_time, const std::string& end_time) {
  Element& e = upsert_element(elements_, ElementKind::kActivity, id, std::move(attrs));
  if (!start_time.empty()) e.start_time = start_time;
  if (!end_time.empty()) e.end_time = end_time;
  return e;
}

Element& Document::add_agent(const std::string& id, Attributes attrs) {
  return upsert_element(elements_, ElementKind::kAgent, id, std::move(attrs));
}

const Element* Document::find_element(std::string_view id) const {
  for (const Element& e : elements_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

Element* Document::find_element(std::string_view id) {
  for (Element& e : elements_) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

std::size_t Document::count(ElementKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(elements_.begin(), elements_.end(),
                    [kind](const Element& e) { return e.kind == kind; }));
}

std::string Document::next_blank_id() { return "_:r" + std::to_string(blank_counter_++); }

Relation& Document::add_relation(RelationKind kind, const std::string& subject,
                                 const std::string& object, const std::string& time,
                                 Attributes attrs, const std::string& id) {
  Relation r;
  r.kind = kind;
  r.id = id.empty() ? next_blank_id() : id;
  r.subject = subject;
  r.object = object;
  r.time = time;
  r.attributes = std::move(attrs);
  relations_.push_back(std::move(r));
  return relations_.back();
}

Relation& Document::used(const std::string& activity, const std::string& entity,
                         const std::string& time, Attributes attrs) {
  return add_relation(RelationKind::kUsed, activity, entity, time, std::move(attrs));
}

Relation& Document::was_generated_by(const std::string& entity, const std::string& activity,
                                     const std::string& time, Attributes attrs) {
  return add_relation(RelationKind::kWasGeneratedBy, entity, activity, time, std::move(attrs));
}

Relation& Document::was_derived_from(const std::string& derived, const std::string& source,
                                     Attributes attrs) {
  return add_relation(RelationKind::kWasDerivedFrom, derived, source, "", std::move(attrs));
}

Relation& Document::was_attributed_to(const std::string& entity, const std::string& agent,
                                      Attributes attrs) {
  return add_relation(RelationKind::kWasAttributedTo, entity, agent, "", std::move(attrs));
}

Relation& Document::was_associated_with(const std::string& activity, const std::string& agent,
                                        Attributes attrs) {
  return add_relation(RelationKind::kWasAssociatedWith, activity, agent, "", std::move(attrs));
}

Relation& Document::acted_on_behalf_of(const std::string& delegate,
                                       const std::string& responsible, Attributes attrs) {
  return add_relation(RelationKind::kActedOnBehalfOf, delegate, responsible, "",
                      std::move(attrs));
}

Relation& Document::was_informed_by(const std::string& informed, const std::string& informant,
                                    Attributes attrs) {
  return add_relation(RelationKind::kWasInformedBy, informed, informant, "", std::move(attrs));
}

Relation& Document::had_member(const std::string& collection, const std::string& member) {
  return add_relation(RelationKind::kHadMember, collection, member);
}

std::size_t Document::count(RelationKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(relations_.begin(), relations_.end(),
                    [kind](const Relation& r) { return r.kind == kind; }));
}

Document& Document::bundle(const std::string& id) {
  for (auto& [bid, doc] : *bundles_) {
    if (bid == id) return doc;
  }
  bundles_->emplace_back(id, Document{});
  return bundles_->back().second;
}

std::vector<std::string> Document::validate() const { return validate_with_parent(nullptr); }

std::vector<std::string> Document::validate_with_parent(const Document* parent) const {
  std::vector<std::string> problems;

  auto prefix_declared = [&](const std::string& prefix) {
    if (namespace_iri(prefix) != nullptr) return true;
    return parent != nullptr && parent->namespace_iri(prefix) != nullptr;
  };

  auto check_prefix = [&](const std::string& id, const char* what) {
    const QualifiedName qn = QualifiedName::parse(id);
    // Blank-node ids ("_:x") and unqualified ids use the default namespace.
    if (qn.prefix.empty() || qn.prefix == "_") return;
    if (!prefix_declared(qn.prefix)) {
      problems.push_back(std::string(what) + " '" + id + "' uses undeclared prefix '" +
                         qn.prefix + "'");
    }
  };

  std::set<std::string> element_ids;
  for (const Element& e : elements_) {
    check_prefix(e.id, "element");
    if (!element_ids.insert(e.id).second) {
      problems.push_back("duplicate element id '" + e.id + "'");
    }
  }

  std::set<std::string> relation_ids;
  for (const Relation& r : relations_) {
    const RelationSpec& spec = relation_spec(r.kind);
    if (!relation_ids.insert(r.id).second) {
      problems.push_back("duplicate relation id '" + r.id + "'");
    }
    for (const auto& [role_id, role_kind, role_name] :
         {std::tuple{r.subject, spec.subject_kind, spec.subject_role},
          std::tuple{r.object, spec.object_kind, spec.object_role}}) {
      const Element* el = find_element(role_id);
      if (el == nullptr) {
        problems.push_back(std::string(spec.json_key) + " '" + r.id + "' references unknown " +
                           std::string(role_name) + " '" + role_id + "'");
      } else if (el->kind != role_kind) {
        problems.push_back(std::string(spec.json_key) + " '" + r.id + "' expects " +
                           element_kind_name(role_kind) + " for " + std::string(role_name) +
                           " but '" + role_id + "' is a " + element_kind_name(el->kind));
      }
      check_prefix(role_id, "relation endpoint");
    }
  }

  for (const auto& [bid, doc] : *bundles_) {
    for (const std::string& p : doc.validate_with_parent(this)) {
      problems.push_back("bundle '" + bid + "': " + p);
    }
  }
  return problems;
}

Status Document::merge(const Document& other) {
  for (const auto& [prefix, iri] : other.namespaces_) {
    if (const std::string* existing = namespace_iri(prefix)) {
      if (*existing != iri) {
        return Error{"conflicting namespace for prefix '" + prefix + "'", "merge"};
      }
    } else {
      declare_namespace(prefix, iri);
    }
  }
  for (const Element& e : other.elements_) {
    Element& merged = upsert_element(elements_, e.kind, e.id, Attributes(e.attributes));
    if (!e.start_time.empty()) merged.start_time = e.start_time;
    if (!e.end_time.empty()) merged.end_time = e.end_time;
  }
  for (const Relation& r : other.relations_) {
    // Blank relation ids are scoped to their source document: re-issue.
    const std::string id = strings::starts_with(r.id, "_:") ? next_blank_id() : r.id;
    add_relation(r.kind, r.subject, r.object, r.time, Attributes(r.attributes), id);
  }
  for (const auto& [bid, doc] : *other.bundles_) {
    Status s = bundle(bid).merge(doc);
    if (!s.ok()) return s;
  }
  return Status::ok_status();
}

bool operator==(const Document& a, const Document& b) {
  return a.namespaces_ == b.namespaces_ && a.elements_ == b.elements_ &&
         a.relations_ == b.relations_ && *a.bundles_ == *b.bundles_;
}

}  // namespace provml::prov
