#include "provml/prov/prov_xml.hpp"

#include "provml/json/write.hpp"

namespace provml::prov {
namespace {

const char* element_tag(ElementKind kind) {
  switch (kind) {
    case ElementKind::kEntity: return "prov:entity";
    case ElementKind::kActivity: return "prov:activity";
    case ElementKind::kAgent: return "prov:agent";
  }
  return "prov:entity";
}

std::string attribute_text(const AttributeValue& attr) {
  if (attr.value.is_string()) return attr.value.as_string();
  return json::write(attr.value);
}

/// Attribute keys are CURIEs already; unqualified keys get the provml
/// prefix so the XML stays namespace-well-formed.
std::string qualified_key(const std::string& key) {
  return key.find(':') == std::string::npos ? "provml:" + key : key;
}

void render_attributes(const Attributes& attrs, std::string& out,
                       const std::string& indent) {
  for (const auto& [key, value] : attrs) {
    const std::string k = qualified_key(key);
    out += indent + "<" + k;
    if (!value.datatype.empty()) out += " xsi:type=\"" + value.datatype + "\"";
    out += ">" + xml_escape(attribute_text(value)) + "</" + k + ">\n";
  }
}

void render(const Document& doc, std::string& out, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string inner = indent + "  ";
  const std::string inner2 = inner + "  ";

  for (const Element& e : doc.elements()) {
    const char* tag = element_tag(e.kind);
    out += inner + "<" + tag + " prov:id=\"" + xml_escape(e.id) + "\"";
    if (e.attributes.empty() && e.start_time.empty() && e.end_time.empty()) {
      out += "/>\n";
      continue;
    }
    out += ">\n";
    if (e.kind == ElementKind::kActivity) {
      if (!e.start_time.empty()) {
        out += inner2 + "<prov:startTime>" + xml_escape(e.start_time) +
               "</prov:startTime>\n";
      }
      if (!e.end_time.empty()) {
        out += inner2 + "<prov:endTime>" + xml_escape(e.end_time) + "</prov:endTime>\n";
      }
    }
    render_attributes(e.attributes, out, inner2);
    out += inner + "</" + std::string(tag) + ">\n";
  }

  for (const Relation& r : doc.relations()) {
    const RelationSpec& spec = relation_spec(r.kind);
    const std::string tag = std::string("prov:") + spec.json_key;
    out += inner + "<" + tag + ">\n";
    // Role elements drop the "prov:" of the role key for the tag name:
    // prov:activity → <prov:activity prov:ref="..."/>.
    out += inner2 + "<" + spec.subject_role + " prov:ref=\"" + xml_escape(r.subject) +
           "\"/>\n";
    out += inner2 + "<" + spec.object_role + " prov:ref=\"" + xml_escape(r.object) +
           "\"/>\n";
    if (!r.time.empty()) {
      out += inner2 + "<prov:time>" + xml_escape(r.time) + "</prov:time>\n";
    }
    render_attributes(r.attributes, out, inner2);
    out += inner + "</" + tag + ">\n";
  }

  for (const auto& [id, sub] : doc.bundles()) {
    out += inner + "<prov:bundleContent prov:id=\"" + xml_escape(id) + "\">\n";
    render(sub, out, depth + 1);
    out += inner + "</prov:bundleContent>\n";
  }
}

}  // namespace

std::string xml_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prov_xml(const Document& doc) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<prov:document";
  for (const auto& [prefix, iri] : doc.namespaces()) {
    out += "\n    xmlns:" + (prefix.empty() ? std::string("default") : prefix) + "=\"" +
           xml_escape(iri) + "\"";
  }
  out += "\n    xmlns:provml=\"https://provml.dev/ns#\"";
  out += "\n    xmlns:xsi=\"http://www.w3.org/2001/XMLSchema-instance\">\n";
  render(doc, out, 0);
  out += "</prov:document>\n";
  return out;
}

}  // namespace provml::prov
