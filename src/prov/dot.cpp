#include "provml/prov/dot.hpp"

#include "provml/json/write.hpp"

namespace provml::prov {
namespace {

std::string sanitize(const std::string& id) {
  std::string out = "n_";
  for (const char c : id) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

std::string escape_label(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string node_label(const Element& e, const DotOptions& opts) {
  std::string label = e.id;
  if (opts.show_attributes) {
    for (const auto& [key, value] : e.attributes) {
      label += "\\n" + key + " = " +
               (value.value.is_string() ? value.value.as_string() : json::write(value.value));
    }
  }
  return escape_label(label);
}

void render(const Document& doc, std::string& out, const DotOptions& opts,
            const std::string& scope, int depth) {
  const std::string indent(static_cast<std::size_t>(depth) * 2 + 2, ' ');
  for (const Element& e : doc.elements()) {
    out += indent + sanitize(scope + e.id) + " [label=\"" + node_label(e, opts) + "\", ";
    switch (e.kind) {
      case ElementKind::kEntity:
        out += "shape=ellipse, style=filled, fillcolor=\"#FFFC87\"";
        break;
      case ElementKind::kActivity:
        out += "shape=box, style=filled, fillcolor=\"#9FB1FC\"";
        break;
      case ElementKind::kAgent:
        out += "shape=house, style=filled, fillcolor=\"#FED37F\"";
        break;
    }
    out += "];\n";
  }
  for (const Relation& r : doc.relations()) {
    const RelationSpec& spec = relation_spec(r.kind);
    out += indent + sanitize(scope + r.subject) + " -> " + sanitize(scope + r.object) +
           " [label=\"" + spec.json_key + "\"];\n";
  }
  int cluster = 0;
  for (const auto& [id, sub] : doc.bundles()) {
    out += indent + "subgraph cluster_" + std::to_string(depth) + "_" +
           std::to_string(cluster++) + " {\n";
    out += indent + "  label=\"" + escape_label(id) + "\";\n";
    render(sub, out, opts, scope + id + "/", depth + 1);
    out += indent + "}\n";
  }
}

}  // namespace

std::string to_dot(const Document& doc, const DotOptions& opts) {
  std::string out = "digraph provenance {\n";
  if (opts.left_to_right) out += "  rankdir=LR;\n";
  out += "  node [fontname=\"Helvetica\"];\n  edge [fontname=\"Helvetica\", fontsize=10];\n";
  render(doc, out, opts, "", 0);
  out += "}\n";
  return out;
}

}  // namespace provml::prov
