// PROV-JSON serialization (W3C member submission, 2013). Document layout:
//   {
//     "prefix":   {"prov": "...", "ex": "..."},
//     "entity":   {"ex:e1": {attrs...}},
//     "activity": {"ex:a1": {"prov:startTime": "...", attrs...}},
//     "agent":    {...},
//     "used":     {"_:r0": {"prov:activity": "ex:a1", "prov:entity": "ex:e1"}},
//     ...one bucket per relation kind...,
//     "bundle":   {"ex:b1": { ...nested document... }}
//   }
// Typed attribute values serialize as {"$": lexical, "type": "xsd:..."}.
#pragma once

#include "provml/common/expected.hpp"
#include "provml/json/value.hpp"
#include "provml/prov/model.hpp"

namespace provml::prov {

/// Converts a document to its PROV-JSON representation.
[[nodiscard]] json::Value to_prov_json(const Document& doc);

/// Parses a PROV-JSON value into a document. Unknown top-level buckets are
/// an error (catches typos); unknown attributes are preserved verbatim.
[[nodiscard]] Expected<Document> from_prov_json(const json::Value& value);

/// Serializes straight to a string (pretty-printed by default, the paper's
/// provenance files are meant to be human-inspectable).
[[nodiscard]] std::string to_prov_json_string(const Document& doc, bool pretty = true);

/// Reads a PROV-JSON document from a file.
[[nodiscard]] Expected<Document> read_prov_json_file(const std::string& path);

/// Writes a PROV-JSON document to a file.
[[nodiscard]] Status write_prov_json_file(const std::string& path, const Document& doc,
                                          bool pretty = true);

}  // namespace provml::prov
