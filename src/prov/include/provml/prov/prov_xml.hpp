// PROV-XML serialization (W3C NOTE-prov-xml-20130430). Completes the PROV
// family writers next to PROV-JSON, PROV-N, and PROV-O Turtle:
//   <prov:document xmlns:prov="..." xmlns:ex="...">
//     <prov:entity prov:id="ex:e1">
//       <prov:type>provml:Dataset</prov:type>
//     </prov:entity>
//     <prov:used>
//       <prov:activity prov:ref="ex:a1"/>
//       <prov:entity prov:ref="ex:e1"/>
//     </prov:used>
//   </prov:document>
#pragma once

#include <string>

#include "provml/prov/model.hpp"

namespace provml::prov {

/// Renders `doc` (including bundles) as PROV-XML text.
[[nodiscard]] std::string to_prov_xml(const Document& doc);

/// Escapes XML text content (&, <, >, ", ').
[[nodiscard]] std::string xml_escape(const std::string& raw);

}  // namespace provml::prov
