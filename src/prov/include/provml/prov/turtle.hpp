// PROV-O serialization as RDF Turtle (W3C REC-prov-o-20130430). Each
// element becomes a typed resource (prov:Entity / prov:Activity /
// prov:Agent), each relation a PROV-O object property
// (prov:used, prov:wasGeneratedBy, ...), attributes become literal
// predicates. This is the third serialization listed in the paper's
// Table 2 ("PROV-N, PROV-JSON, PROV-O (RDF)").
#pragma once

#include <string>

#include "provml/prov/model.hpp"

namespace provml::prov {

/// Renders `doc` as Turtle. Bundles are flattened with a prov:bundledIn
/// back-reference (Turtle has no native bundle syntax).
[[nodiscard]] std::string to_turtle(const Document& doc);

/// Replaces characters that are invalid in Turtle local names ('/', ' ',
/// '#') with underscores.
[[nodiscard]] std::string sanitize_local(const std::string& local);

}  // namespace provml::prov
