// GraphViz DOT export following the conventional PROV visual style used by
// the paper's Figure 1: entities are yellow ellipses, activities blue
// rectangles, agents orange houses; edges are labeled with relation names.
#pragma once

#include <string>

#include "provml/prov/model.hpp"

namespace provml::prov {

struct DotOptions {
  bool show_attributes = false;  ///< render attribute key/values inside nodes
  bool left_to_right = false;    ///< rankdir=LR instead of top-down
};

/// Renders `doc` as a DOT digraph (bundles become clusters).
[[nodiscard]] std::string to_dot(const Document& doc, const DotOptions& opts = {});

}  // namespace provml::prov
