// A practical subset of W3C PROV-CONSTRAINTS (REC-prov-constraints-20130430)
// checks, beyond the structural validation in Document::validate():
//
//   * derivation-cycle:   wasDerivedFrom must be acyclic
//   * specialization-cycle: specializationOf must be acyclic and irreflexive
//   * generation-generation: an entity has at most one generating activity
//   * usage-within-activity: usage/generation times fall inside the
//     activity's [startTime, endTime] window when all three are present
//   * activity-times:     startTime <= endTime
//   * generation-before-usage: an entity is not used before it is generated
//     (when both events carry times)
//
// Times are compared lexicographically, which is correct for ISO-8601 UTC
// strings of equal precision (the format the core logger emits).
#pragma once

#include <string>
#include <vector>

#include "provml/prov/model.hpp"

namespace provml::prov {

struct ConstraintViolation {
  std::string rule;     ///< e.g. "derivation-cycle"
  std::string subject;  ///< offending element/relation id
  std::string detail;   ///< human-readable explanation
};

/// Runs all constraint checks over `doc` (bundles included, independently).
[[nodiscard]] std::vector<ConstraintViolation> check_constraints(const Document& doc);

/// Renders violations one per line.
[[nodiscard]] std::string to_string(const std::vector<ConstraintViolation>& violations);

}  // namespace provml::prov
