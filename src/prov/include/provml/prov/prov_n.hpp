// PROV-N (the provenance notation, W3C REC-prov-n-20130430) writer.
// Produces the human-readable form:
//   document
//     prefix ex <http://example.org/>
//     entity(ex:e1, [prov:type="model"])
//     activity(ex:a1, 2024-01-01T00:00:00, 2024-01-01T01:00:00)
//     wasGeneratedBy(ex:e1, ex:a1, -)
//   endDocument
#pragma once

#include <string>

#include "provml/prov/model.hpp"

namespace provml::prov {

/// Renders `doc` (including bundles) as PROV-N text.
[[nodiscard]] std::string to_prov_n(const Document& doc);

}  // namespace provml::prov
