// Configuration for experiments and runs.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace provml::core {

/// Built-in context names matching the paper's Figure 2 data model; any
/// other string is a valid user-defined context.
namespace contexts {
inline constexpr const char* kTraining = "TRAINING";
inline constexpr const char* kValidation = "VALIDATION";
inline constexpr const char* kTesting = "TESTING";
}  // namespace contexts

/// Whether a logged value/file is an input required by the execution or an
/// output it produces. The paper's latest version added exactly this
/// distinction ("it is now possible to define whether the data logged is an
/// input, otherwise defaulting to an output").
enum class IoRole { kInput, kOutput };

struct RunOptions {
  /// Directory that receives the run's provenance file, metric store, and
  /// artifacts manifest. Created if missing.
  std::string provenance_dir = "prov";

  /// Metric storage back-end: "embedded" keeps all samples inside the
  /// PROV-JSON document (Table 1's baseline); "json" / "zarr" / "netcdf"
  /// write a side file referenced from the document.
  std::string metric_store = "zarr";

  /// Attach sysmon collectors for the run's duration.
  bool collect_system_metrics = false;
  std::vector<std::string> collectors = {"gpu_sim", "process"};
  std::chrono::milliseconds sampling_period{200};

  /// Also emit PROV-N and GraphViz DOT next to the PROV-JSON.
  bool write_prov_n = false;
  bool write_dot = false;

  /// Wrap the run directory in an RO-Crate on finish.
  bool create_rocrate = false;

  /// Pretty-print the PROV-JSON (the paper's files are human-inspectable).
  bool pretty_json = true;

  /// The agent recorded as prov:Person for the run.
  std::string user = "provml-user";
};

}  // namespace provml::core
