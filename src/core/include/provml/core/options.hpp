// Configuration for experiments and runs.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace provml::core {

/// Built-in context names matching the paper's Figure 2 data model; any
/// other string is a valid user-defined context.
namespace contexts {
inline constexpr const char* kTraining = "TRAINING";
inline constexpr const char* kValidation = "VALIDATION";
inline constexpr const char* kTesting = "TESTING";
}  // namespace contexts

/// Whether a logged value/file is an input required by the execution or an
/// output it produces. The paper's latest version added exactly this
/// distinction ("it is now possible to define whether the data logged is an
/// input, otherwise defaulting to an output").
enum class IoRole { kInput, kOutput };

/// How metric samples reach the side store.
///   kBatch  — buffer every sample in memory and serialize the whole set at
///             finish() (the original write path; finish latency and peak
///             memory grow with run length).
///   kStream — hand full chunks to a background flusher during the run.
///             Chunked stores (zarr) persist each chunk durably as it
///             completes, so a job killed mid-training (the paper's 2-hour
///             Frontier walltime) leaves a readable sample prefix and
///             finish() only seals the tail. Single-file stores still
///             publish at finish, but off the caller's logging hot path.
enum class MetricSyncMode { kBatch, kStream };

struct RunOptions {
  /// Directory that receives the run's provenance file, metric store, and
  /// artifacts manifest. Created if missing.
  std::string provenance_dir = "prov";

  /// Metric storage back-end: "embedded" keeps all samples inside the
  /// PROV-JSON document (Table 1's baseline); "json" / "zarr" / "netcdf"
  /// write a side file referenced from the document.
  std::string metric_store = "zarr";

  /// Streaming vs batch metric persistence (see MetricSyncMode). Ignored —
  /// treated as kBatch — when metric_store is "embedded", which needs every
  /// sample in memory to inline into the PROV document.
  MetricSyncMode sync_mode = MetricSyncMode::kBatch;

  /// Stream mode: samples staged per series before a chunk is handed to
  /// the background flusher. Chunked stores also use it as the on-disk
  /// chunk length, so each flush durably extends the readable prefix.
  std::size_t flush_chunk_length = 1024;

  /// Stream mode: chunks the flusher queue holds before log_metric blocks
  /// (backpressure against a producer outrunning the disk).
  std::size_t flush_queue_chunks = 8;

  /// Attach sysmon collectors for the run's duration.
  bool collect_system_metrics = false;
  std::vector<std::string> collectors = {"gpu_sim", "process"};
  std::chrono::milliseconds sampling_period{200};

  /// Also emit PROV-N and GraphViz DOT next to the PROV-JSON.
  bool write_prov_n = false;
  bool write_dot = false;

  /// Wrap the run directory in an RO-Crate on finish.
  bool create_rocrate = false;

  /// Pretty-print the PROV-JSON (the paper's files are human-inspectable).
  bool pretty_json = true;

  /// The agent recorded as prov:Person for the run.
  std::string user = "provml-user";
};

}  // namespace provml::core
