// The run logger — the library's MLflow-shaped core API. A Run collects
// parameters, metrics, and artifacts during a training execution, divided
// into contexts (TRAINING / VALIDATION / TESTING / custom) and epochs, and
// finishes by emitting a W3C PROV document plus a metric store file.
//
//   Experiment exp("modis_fm");
//   Run& run = exp.start_run(options);
//   run.log_param("learning_rate", 1e-4);
//   run.begin_epoch(contexts::kTraining, 0);
//   run.log_metric("loss", 0.93, /*step=*/10, contexts::kTraining);
//   run.end_epoch(contexts::kTraining, 0);
//   run.log_artifact("checkpoint", "ckpt/epoch0.pt", IoRole::kOutput);
//   Status s = run.finish();
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "provml/common/bounded_queue.hpp"
#include "provml/common/expected.hpp"
#include "provml/core/options.hpp"
#include "provml/prov/model.hpp"
#include "provml/storage/series.hpp"
#include "provml/storage/sink.hpp"
#include "provml/storage/store.hpp"
#include "provml/sysmon/sampler.hpp"

namespace provml::core {

/// A logged parameter (one-time value, e.g. a hyperparameter).
struct Parameter {
  std::string name;
  json::Value value;
  IoRole role = IoRole::kInput;
};

/// A logged artifact (file produced or consumed by the run).
struct Artifact {
  std::string name;
  std::string path;
  IoRole role = IoRole::kOutput;
  std::string context;  ///< optional context association
};

/// Epoch bookkeeping inside one context.
struct EpochRecord {
  int index = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
};

class Experiment;

class Run {
 public:
  ~Run();
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  [[nodiscard]] const std::string& name() const { return run_name_; }
  [[nodiscard]] const std::string& experiment_name() const { return experiment_name_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }

  // -- logging (thread-safe) ------------------------------------------------
  /// Records a one-time value. Inputs are hyperparameters the execution
  /// needs; outputs are results (e.g. final accuracy).
  void log_param(const std::string& name, json::Value value, IoRole role = IoRole::kInput);

  /// Appends one metric sample. `step` is the caller's training step; the
  /// timestamp is taken automatically.
  void log_metric(const std::string& name, double value, std::int64_t step,
                  const std::string& context = contexts::kTraining,
                  const std::string& unit = "");

  /// Registers a file the run used (kInput) or produced (kOutput).
  void log_artifact(const std::string& name, const std::string& path,
                    IoRole role = IoRole::kOutput, const std::string& context = "");

  /// Convenience: registers the training script itself as an input artifact
  /// with prov:type provml:SourceCode.
  void log_source_code(const std::string& path);

  /// Captures the execution environment (hostname, pid, working directory,
  /// hardware concurrency) as a provml:Environment entity used by the run —
  /// the "definition of a development environment" the paper's Section 3.1
  /// wants recorded.
  void log_environment();

  /// Marks epoch boundaries inside a context (paper Figure 2: training and
  /// validation stages "are organized into epochs").
  void begin_epoch(const std::string& context, int epoch);
  void end_epoch(const std::string& context, int epoch);

  // -- lifecycle --------------------------------------------------------------
  /// Stops collection, writes the metric store, builds the PROV document,
  /// and writes "<run_name>.provjson" (plus optional PROV-N / DOT / crate)
  /// into the provenance directory. Idempotent; returns the first failure.
  [[nodiscard]] Status finish();

  [[nodiscard]] bool finished() const { return finished_; }

  /// The PROV document (valid after finish()).
  [[nodiscard]] const prov::Document& document() const { return document_; }

  /// True when samples stream to the store during the run instead of
  /// buffering until finish() (sync_mode == kStream with a side store).
  [[nodiscard]] bool streaming() const { return streaming_; }

  /// Path of the metric side store ("" when metric_store is "embedded").
  [[nodiscard]] std::string metric_store_path() const;

  /// Collected metrics (valid anytime; stable references). In streaming
  /// mode samples are not retained in memory — this set stays empty and
  /// the store file is the source of truth; per-series sample counts are
  /// still recorded in the PROV document.
  [[nodiscard]] const storage::MetricSet& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<Parameter>& parameters() const { return parameters_; }
  [[nodiscard]] const std::vector<Artifact>& artifacts() const { return artifacts_; }

  /// Path of the PROV-JSON file written by finish().
  [[nodiscard]] std::string provenance_path() const;

 private:
  friend class Experiment;
  Run(std::string experiment_name, std::string run_name, RunOptions options);

  /// Lightweight per-series record kept in streaming mode instead of the
  /// sample buffer: identity, cumulative count, and the staged tail that
  /// has not been handed to the flusher yet.
  struct StreamSeries {
    std::string name;
    std::string context;
    std::string unit;
    std::uint64_t count = 0;
    std::vector<storage::MetricSample> staged;
  };

  /// One unit of flusher work: a chunk of samples for one series.
  struct MetricChunk {
    std::string name;
    std::string context;
    std::string unit;
    std::vector<storage::MetricSample> samples;
  };

  void build_document();
  void open_stream();  // ctor helper: open sink + start the flusher
  void flusher_loop();
  void append_metric_locked(const std::string& name, const std::string& context,
                            const std::string& unit, std::int64_t step,
                            std::int64_t timestamp_ms, double value);
  StreamSeries& stream_series_locked(const std::string& name, const std::string& context,
                                     const std::string& unit);

  std::string experiment_name_;
  std::string run_name_;
  RunOptions options_;
  std::int64_t started_ms_ = 0;
  std::int64_t finished_ms_ = 0;

  mutable std::mutex mutex_;
  std::vector<Parameter> parameters_;
  std::vector<Artifact> artifacts_;
  storage::MetricSet metrics_;
  std::map<std::string, std::vector<EpochRecord>> epochs_;  // context → epochs
  std::optional<std::string> source_code_;
  std::vector<std::pair<std::string, json::Value>> environment_;

  // Streaming write path (sync_mode == kStream with a side store): samples
  // flow log_metric → staged chunk → bounded queue → flusher thread →
  // MetricSink, never accumulating in metrics_.
  bool streaming_ = false;
  std::unique_ptr<storage::MetricStore> stream_store_;
  std::unique_ptr<storage::MetricSink> sink_;
  std::unique_ptr<common::BoundedQueue<MetricChunk>> flush_queue_;
  std::thread flusher_;
  std::vector<std::unique_ptr<StreamSeries>> stream_series_;
  std::map<std::pair<std::string, std::string>, std::size_t> stream_index_;
  Status stream_status_;  // first sink error; owned by the flusher until join

  std::unique_ptr<sysmon::Sampler> sampler_;
  prov::Document document_;
  bool finished_ = false;
};

/// Groups related runs (Figure 2: "the core entity in this model is an
/// Experiment, which includes different Run Execution instances").
class Experiment {
 public:
  explicit Experiment(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Starts a run; names are auto-assigned "run_0", "run_1", ... unless
  /// `run_name` is given. The Experiment owns the Run.
  Run& start_run(RunOptions options = {}, const std::string& run_name = "");

  [[nodiscard]] const std::vector<std::unique_ptr<Run>>& runs() const { return runs_; }

  /// Finishes every unfinished run; returns the first failure.
  [[nodiscard]] Status finish_all();

  /// Combined experiment provenance (the paper's future-work feature:
  /// "tracking all experiment runs in a single provenance file, to enable
  /// easier comparison with each individual execution"): one document with
  /// the experiment entity at top level and every finished run's document
  /// as a named bundle. Unfinished runs are skipped.
  [[nodiscard]] prov::Document combined_document() const;

  /// Writes combined_document() as PROV-JSON to `path`.
  [[nodiscard]] Status write_combined_provenance(const std::string& path,
                                                 bool pretty = true) const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Run>> runs_;
  int next_run_ = 0;
};

}  // namespace provml::core
