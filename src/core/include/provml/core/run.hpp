// The run logger — the library's MLflow-shaped core API. A Run collects
// parameters, metrics, and artifacts during a training execution, divided
// into contexts (TRAINING / VALIDATION / TESTING / custom) and epochs, and
// finishes by emitting a W3C PROV document plus a metric store file.
//
//   Experiment exp("modis_fm");
//   Run& run = exp.start_run(options);
//   run.log_param("learning_rate", 1e-4);
//   run.begin_epoch(contexts::kTraining, 0);
//   run.log_metric("loss", 0.93, /*step=*/10, contexts::kTraining);
//   run.end_epoch(contexts::kTraining, 0);
//   run.log_artifact("checkpoint", "ckpt/epoch0.pt", IoRole::kOutput);
//   Status s = run.finish();
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "provml/common/expected.hpp"
#include "provml/core/options.hpp"
#include "provml/prov/model.hpp"
#include "provml/storage/series.hpp"
#include "provml/sysmon/sampler.hpp"

namespace provml::core {

/// A logged parameter (one-time value, e.g. a hyperparameter).
struct Parameter {
  std::string name;
  json::Value value;
  IoRole role = IoRole::kInput;
};

/// A logged artifact (file produced or consumed by the run).
struct Artifact {
  std::string name;
  std::string path;
  IoRole role = IoRole::kOutput;
  std::string context;  ///< optional context association
};

/// Epoch bookkeeping inside one context.
struct EpochRecord {
  int index = 0;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
};

class Experiment;

class Run {
 public:
  ~Run();
  Run(const Run&) = delete;
  Run& operator=(const Run&) = delete;

  [[nodiscard]] const std::string& name() const { return run_name_; }
  [[nodiscard]] const std::string& experiment_name() const { return experiment_name_; }
  [[nodiscard]] const RunOptions& options() const { return options_; }

  // -- logging (thread-safe) ------------------------------------------------
  /// Records a one-time value. Inputs are hyperparameters the execution
  /// needs; outputs are results (e.g. final accuracy).
  void log_param(const std::string& name, json::Value value, IoRole role = IoRole::kInput);

  /// Appends one metric sample. `step` is the caller's training step; the
  /// timestamp is taken automatically.
  void log_metric(const std::string& name, double value, std::int64_t step,
                  const std::string& context = contexts::kTraining,
                  const std::string& unit = "");

  /// Registers a file the run used (kInput) or produced (kOutput).
  void log_artifact(const std::string& name, const std::string& path,
                    IoRole role = IoRole::kOutput, const std::string& context = "");

  /// Convenience: registers the training script itself as an input artifact
  /// with prov:type provml:SourceCode.
  void log_source_code(const std::string& path);

  /// Captures the execution environment (hostname, pid, working directory,
  /// hardware concurrency) as a provml:Environment entity used by the run —
  /// the "definition of a development environment" the paper's Section 3.1
  /// wants recorded.
  void log_environment();

  /// Marks epoch boundaries inside a context (paper Figure 2: training and
  /// validation stages "are organized into epochs").
  void begin_epoch(const std::string& context, int epoch);
  void end_epoch(const std::string& context, int epoch);

  // -- lifecycle --------------------------------------------------------------
  /// Stops collection, writes the metric store, builds the PROV document,
  /// and writes "<run_name>.provjson" (plus optional PROV-N / DOT / crate)
  /// into the provenance directory. Idempotent; returns the first failure.
  [[nodiscard]] Status finish();

  [[nodiscard]] bool finished() const { return finished_; }

  /// The PROV document (valid after finish()).
  [[nodiscard]] const prov::Document& document() const { return document_; }

  /// Collected metrics (valid anytime; stable references).
  [[nodiscard]] const storage::MetricSet& metrics() const { return metrics_; }
  [[nodiscard]] const std::vector<Parameter>& parameters() const { return parameters_; }
  [[nodiscard]] const std::vector<Artifact>& artifacts() const { return artifacts_; }

  /// Path of the PROV-JSON file written by finish().
  [[nodiscard]] std::string provenance_path() const;

 private:
  friend class Experiment;
  Run(std::string experiment_name, std::string run_name, RunOptions options);

  void build_document();

  std::string experiment_name_;
  std::string run_name_;
  RunOptions options_;
  std::int64_t started_ms_ = 0;
  std::int64_t finished_ms_ = 0;

  mutable std::mutex mutex_;
  std::vector<Parameter> parameters_;
  std::vector<Artifact> artifacts_;
  storage::MetricSet metrics_;
  std::map<std::string, std::vector<EpochRecord>> epochs_;  // context → epochs
  std::optional<std::string> source_code_;
  std::vector<std::pair<std::string, json::Value>> environment_;

  std::unique_ptr<sysmon::Sampler> sampler_;
  prov::Document document_;
  bool finished_ = false;
};

/// Groups related runs (Figure 2: "the core entity in this model is an
/// Experiment, which includes different Run Execution instances").
class Experiment {
 public:
  explicit Experiment(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Starts a run; names are auto-assigned "run_0", "run_1", ... unless
  /// `run_name` is given. The Experiment owns the Run.
  Run& start_run(RunOptions options = {}, const std::string& run_name = "");

  [[nodiscard]] const std::vector<std::unique_ptr<Run>>& runs() const { return runs_; }

  /// Finishes every unfinished run; returns the first failure.
  [[nodiscard]] Status finish_all();

  /// Combined experiment provenance (the paper's future-work feature:
  /// "tracking all experiment runs in a single provenance file, to enable
  /// easier comparison with each individual execution"): one document with
  /// the experiment entity at top level and every finished run's document
  /// as a named bundle. Unfinished runs are skipped.
  [[nodiscard]] prov::Document combined_document() const;

  /// Writes combined_document() as PROV-JSON to `path`.
  [[nodiscard]] Status write_combined_provenance(const std::string& path,
                                                 bool pretty = true) const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Run>> runs_;
  int next_run_ = 0;
};

}  // namespace provml::core
