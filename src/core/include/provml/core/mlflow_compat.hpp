// MLflow-shaped module-level API. The paper positions yProv4ML as exposing
// "logging utilities similar to MLFlow, allowing for quick integration";
// this facade gives the familiar start_run / log_param / log_metric /
// end_run free functions over a process-global current run.
//
//   mlflow::set_experiment("modis_fm");
//   mlflow::start_run();
//   mlflow::log_param("lr", 1e-4);
//   mlflow::log_metric("loss", 0.93, 10);
//   mlflow::end_run();
#pragma once

#include "provml/core/run.hpp"

namespace provml::core::mlflow {

/// Selects (creating if needed) the active experiment. Affects subsequent
/// start_run() calls; the default experiment is "default".
void set_experiment(const std::string& name, RunOptions default_options = {});

/// Starts a new run in the active experiment and makes it current.
/// Returns the run (owned by the experiment, valid until reset()).
Run& start_run(const std::string& run_name = "");

/// The current run, or nullptr outside start_run/end_run.
[[nodiscard]] Run* active_run();

void log_param(const std::string& name, json::Value value, IoRole role = IoRole::kInput);
void log_metric(const std::string& name, double value, std::int64_t step,
                const std::string& context = contexts::kTraining);
void log_artifact(const std::string& name, const std::string& path,
                  IoRole role = IoRole::kOutput);

/// Finishes the current run. Returns the finish status (ok outside a run).
Status end_run();

/// Drops all global state (finishing any active run). Used by tests.
void reset();

}  // namespace provml::core::mlflow
