#include "provml/core/mlflow_compat.hpp"

#include <memory>
#include <mutex>

namespace provml::core::mlflow {
namespace {

struct GlobalState {
  std::mutex mutex;
  std::unique_ptr<Experiment> experiment;
  RunOptions default_options;
  Run* active = nullptr;
};

GlobalState& state() {
  static GlobalState s;
  return s;
}

Experiment& ensure_experiment(GlobalState& s) {
  if (!s.experiment) s.experiment = std::make_unique<Experiment>("default");
  return *s.experiment;
}

}  // namespace

void set_experiment(const std::string& name, RunOptions default_options) {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active != nullptr) {
    (void)s.active->finish();
    s.active = nullptr;
  }
  s.experiment = std::make_unique<Experiment>(name);
  s.default_options = std::move(default_options);
}

Run& start_run(const std::string& run_name) {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active != nullptr) (void)s.active->finish();
  s.active = &ensure_experiment(s).start_run(s.default_options, run_name);
  return *s.active;
}

Run* active_run() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  return s.active;
}

void log_param(const std::string& name, json::Value value, IoRole role) {
  if (Run* run = active_run()) run->log_param(name, std::move(value), role);
}

void log_metric(const std::string& name, double value, std::int64_t step,
                const std::string& context) {
  if (Run* run = active_run()) run->log_metric(name, value, step, context);
}

void log_artifact(const std::string& name, const std::string& path, IoRole role) {
  if (Run* run = active_run()) run->log_artifact(name, path, role);
}

Status end_run() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active == nullptr) return Status::ok_status();
  Status result = s.active->finish();
  s.active = nullptr;
  return result;
}

void reset() {
  GlobalState& s = state();
  const std::lock_guard<std::mutex> lock(s.mutex);
  if (s.active != nullptr) (void)s.active->finish();
  s.active = nullptr;
  s.experiment.reset();
  s.default_options = RunOptions{};
}

}  // namespace provml::core::mlflow
