#include "provml/core/run.hpp"

#include <filesystem>
#include <thread>

#include <unistd.h>

#include "provml/common/strings.hpp"
#include "provml/compress/container.hpp"
#include "provml/prov/dot.hpp"
#include "provml/prov/prov_json.hpp"
#include "provml/prov/prov_n.hpp"
#include "provml/rocrate/crate.hpp"
#include "provml/storage/json_store.hpp"
#include "provml/storage/store.hpp"

namespace provml::core {
namespace {

namespace fs = std::filesystem;

constexpr const char* kProvmlNamespace = "https://provml.dev/ns#";
constexpr const char* kSystemContext = "SYSTEM";

std::string role_string(IoRole role) {
  return role == IoRole::kInput ? "input" : "output";
}

}  // namespace

Run::Run(std::string experiment_name, std::string run_name, RunOptions options)
    : experiment_name_(std::move(experiment_name)),
      run_name_(std::move(run_name)),
      options_(std::move(options)),
      started_ms_(sysmon::now_ms()) {
  if (options_.sync_mode == MetricSyncMode::kStream &&
      options_.metric_store != "embedded") {
    open_stream();  // before the sampler: its readings flow through the sink
  }
  if (options_.collect_system_metrics) {
    sampler_ = std::make_unique<sysmon::Sampler>(options_.sampling_period);
    for (const std::string& name : options_.collectors) {
      if (auto collector = sysmon::CollectorRegistry::global().create(name)) {
        sampler_->add_collector(std::move(collector));
      }
    }
    sampler_->start([this](const std::string&, const sysmon::Reading& reading,
                           std::int64_t ts) {
      const std::lock_guard<std::mutex> lock(mutex_);
      // Step = number of samples already in the series, streaming or not.
      const std::int64_t step =
          streaming_
              ? static_cast<std::int64_t>(
                    stream_series_locked(reading.metric, kSystemContext, reading.unit)
                        .count)
              : static_cast<std::int64_t>(
                    metrics_.series(reading.metric, kSystemContext, reading.unit).size());
      append_metric_locked(reading.metric, kSystemContext, reading.unit, step, ts,
                           reading.value);
    });
  }
}

Run::~Run() {
  if (!finished_) (void)finish();
}

std::string Run::metric_store_path() const {
  if (options_.metric_store == "embedded") return "";
  const auto store = storage::StoreRegistry::global().create(options_.metric_store);
  return (fs::path(options_.provenance_dir) /
          (run_name_ + "_metrics" + (store ? store->path_suffix() : "")))
      .string();
}

void Run::open_stream() {
  stream_store_ = storage::StoreRegistry::global().create(options_.metric_store);
  if (stream_store_ == nullptr) {
    stream_status_ = Error{"unknown metric store: " + options_.metric_store, run_name_};
    return;  // finish() reports it; logging degrades to the batch buffer
  }
  std::error_code ec;
  fs::create_directories(options_.provenance_dir, ec);
  if (ec) {
    stream_status_ =
        Error{"cannot create provenance dir: " + ec.message(), options_.provenance_dir};
    return;
  }
  Expected<std::unique_ptr<storage::MetricSink>> sink =
      stream_store_->open_sink(metric_store_path(),
                               {.durable = true,
                                .chunk_length = options_.flush_chunk_length});
  if (!sink.ok()) {
    stream_status_ = sink.error();
    return;
  }
  sink_ = sink.take();
  flush_queue_ = std::make_unique<common::BoundedQueue<MetricChunk>>(
      options_.flush_queue_chunks);
  streaming_ = true;
  flusher_ = std::thread([this] { flusher_loop(); });
}

void Run::flusher_loop() {
  while (std::optional<MetricChunk> chunk = flush_queue_->pop()) {
    if (!stream_status_.ok()) continue;  // drain + drop after the first error
    Expected<std::size_t> id =
        sink_->declare_series(chunk->name, chunk->context, chunk->unit);
    if (!id.ok()) {
      stream_status_ = id.error();
      continue;
    }
    Status s = sink_->append_block(id.value(), chunk->samples.data(),
                                   chunk->samples.size());
    if (s.ok()) s = sink_->flush();  // publish completed chunks durably
    if (!s.ok()) stream_status_ = s;
  }
}

Run::StreamSeries& Run::stream_series_locked(const std::string& name,
                                             const std::string& context,
                                             const std::string& unit) {
  const auto it = stream_index_.find({context, name});
  if (it != stream_index_.end()) {
    StreamSeries& series = *stream_series_[it->second];
    if (series.unit.empty()) series.unit = unit;
    return series;
  }
  auto series = std::make_unique<StreamSeries>();
  series->name = name;
  series->context = context;
  series->unit = unit;
  stream_series_.push_back(std::move(series));
  stream_index_.emplace(std::make_pair(context, name), stream_series_.size() - 1);
  return *stream_series_.back();
}

void Run::append_metric_locked(const std::string& name, const std::string& context,
                               const std::string& unit, std::int64_t step,
                               std::int64_t timestamp_ms, double value) {
  if (!streaming_) {
    metrics_.series(name, context, unit).append(step, timestamp_ms, value);
    return;
  }
  StreamSeries& series = stream_series_locked(name, context, unit);
  series.staged.push_back({step, timestamp_ms, value});
  ++series.count;
  if (series.staged.size() >= options_.flush_chunk_length) {
    MetricChunk chunk{series.name, series.context, series.unit,
                      std::move(series.staged)};
    series.staged = {};
    // Blocks when the flusher is behind: backpressure instead of unbounded
    // buffering. The flusher never takes mutex_, so it keeps draining.
    (void)flush_queue_->push(std::move(chunk));
  }
}

void Run::log_param(const std::string& name, json::Value value, IoRole role) {
  const std::lock_guard<std::mutex> lock(mutex_);
  parameters_.push_back(Parameter{name, std::move(value), role});
}

void Run::log_metric(const std::string& name, double value, std::int64_t step,
                     const std::string& context, const std::string& unit) {
  const std::lock_guard<std::mutex> lock(mutex_);
  append_metric_locked(name, context, unit, step, sysmon::now_ms(), value);
}

void Run::log_artifact(const std::string& name, const std::string& path, IoRole role,
                       const std::string& context) {
  const std::lock_guard<std::mutex> lock(mutex_);
  artifacts_.push_back(Artifact{name, path, role, context});
}

void Run::log_source_code(const std::string& path) {
  const std::lock_guard<std::mutex> lock(mutex_);
  source_code_ = path;
}

void Run::log_environment() {
  char hostname[256] = "unknown";
  (void)::gethostname(hostname, sizeof hostname - 1);
  std::error_code ec;
  const std::string cwd = fs::current_path(ec).string();
  const std::lock_guard<std::mutex> lock(mutex_);
  environment_.clear();
  environment_.emplace_back("hostname", json::Value(std::string(hostname)));
  environment_.emplace_back("pid", json::Value(static_cast<std::int64_t>(::getpid())));
  environment_.emplace_back("cwd", json::Value(cwd));
  environment_.emplace_back(
      "hardware_concurrency",
      json::Value(static_cast<std::int64_t>(std::thread::hardware_concurrency())));
}

void Run::begin_epoch(const std::string& context, int epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  epochs_[context].push_back(EpochRecord{epoch, sysmon::now_ms(), 0});
}

void Run::end_epoch(const std::string& context, int epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = epochs_[context].rbegin(); it != epochs_[context].rend(); ++it) {
    if (it->index == epoch && it->end_ms == 0) {
      it->end_ms = sysmon::now_ms();
      return;
    }
  }
  // end without begin: record a zero-length epoch, better than dropping it
  epochs_[context].push_back(EpochRecord{epoch, sysmon::now_ms(), sysmon::now_ms()});
}

std::string Run::provenance_path() const {
  return (fs::path(options_.provenance_dir) / (run_name_ + ".provjson")).string();
}

void Run::build_document() {
  prov::Document doc;
  doc.declare_namespace("provml", kProvmlNamespace);
  doc.declare_namespace("ex", "urn:provml:" + experiment_name_ + "/");

  const std::string agent_id = "ex:" + options_.user;
  const std::string experiment_id = "ex:experiment";
  const std::string run_id = "ex:" + run_name_;

  doc.add_agent(agent_id, {{"prov:type", "prov:Person"},
                           {"provml:username", options_.user}});
  doc.add_entity(experiment_id, {{"prov:type", "provml:Experiment"},
                                 {"provml:name", experiment_name_}});
  doc.add_activity(run_id,
                   {{"prov:type", "provml:RunExecution"},
                    {"provml:run_name", run_name_}},
                   strings::iso8601_utc(started_ms_), strings::iso8601_utc(finished_ms_));
  doc.was_associated_with(run_id, agent_id);
  doc.add_relation(prov::RelationKind::kWasStartedBy, run_id, experiment_id,
                   strings::iso8601_utc(started_ms_));
  doc.was_attributed_to(experiment_id, agent_id);

  // Contexts present in metrics or epochs each become a sub-activity.
  auto context_activity = [&](const std::string& context) {
    const std::string id = run_id + "/" + context;
    if (doc.find_element(id) == nullptr) {
      doc.add_activity(id, {{"prov:type", "provml:Context"},
                            {"provml:context", context}});
      doc.was_informed_by(id, run_id);
    }
    return id;
  };

  // Epoch activities under their context (Figure 2's innermost level).
  for (const auto& [context, records] : epochs_) {
    const std::string ctx_id = context_activity(context);
    for (const EpochRecord& epoch : records) {
      const std::string epoch_id = ctx_id + "/epoch_" + std::to_string(epoch.index);
      doc.add_activity(epoch_id,
                       {{"prov:type", "provml:Epoch"},
                        {"provml:epoch", epoch.index},
                        {"provml:duration_ms",
                         static_cast<std::int64_t>(epoch.end_ms - epoch.start_ms)}},
                       strings::iso8601_utc(epoch.start_ms),
                       epoch.end_ms > 0 ? strings::iso8601_utc(epoch.end_ms) : "");
      doc.was_informed_by(epoch_id, ctx_id);
    }
  }

  // Parameters: inputs are used by the run, outputs generated by it.
  for (const Parameter& param : parameters_) {
    const std::string param_id = "ex:param/" + param.name;
    doc.add_entity(param_id, {{"prov:type", "provml:Parameter"},
                              {"provml:name", param.name},
                              {"provml:value", prov::AttributeValue{param.value}},
                              {"provml:role", role_string(param.role)}});
    if (param.role == IoRole::kInput) {
      doc.used(run_id, param_id, strings::iso8601_utc(started_ms_));
    } else {
      doc.was_generated_by(param_id, run_id, strings::iso8601_utc(finished_ms_));
    }
  }

  // Metric series: one entity per series, generated by its context. When a
  // side store is configured, series carry a pointer to it; "embedded"
  // inlines every sample (the Table 1 baseline). In streaming mode only
  // the lightweight per-series records exist — the samples are already on
  // disk — so entities are built from those.
  struct SeriesInfo {
    const std::string* name;
    const std::string* context;
    const std::string* unit;
    std::uint64_t count;
    const storage::MetricSeries* data;  ///< nullptr when streaming
  };
  std::vector<SeriesInfo> series_infos;
  if (streaming_) {
    series_infos.reserve(stream_series_.size());
    for (const auto& s : stream_series_) {
      series_infos.push_back({&s->name, &s->context, &s->unit, s->count, nullptr});
    }
  } else {
    series_infos.reserve(metrics_.size());
    for (const storage::MetricSeries& s : metrics_.all()) {
      series_infos.push_back({&s.name, &s.context, &s.unit, s.size(), &s});
    }
  }

  const bool embedded = options_.metric_store == "embedded";
  std::string store_id;
  if (!embedded && !series_infos.empty()) {
    store_id = "ex:metric_store";
    const auto store = storage::StoreRegistry::global().create(options_.metric_store);
    const std::string store_file =
        run_name_ + "_metrics" + (store ? store->path_suffix() : "");
    doc.add_entity(store_id, {{"prov:type", "provml:MetricStore"},
                              {"provml:format", options_.metric_store},
                              {"provml:path", store_file}});
    doc.was_generated_by(store_id, run_id, strings::iso8601_utc(finished_ms_));
  }
  for (const SeriesInfo& series : series_infos) {
    const std::string ctx_id = context_activity(*series.context);
    const std::string metric_id = "ex:metric/" + *series.context + "/" + *series.name;
    prov::Attributes attrs{{"prov:type", "provml:Metric"},
                           {"provml:name", *series.name},
                           {"provml:context", *series.context},
                           {"provml:samples", static_cast<std::int64_t>(series.count)}};
    if (!series.unit->empty()) attrs.emplace_back("provml:unit", *series.unit);
    if (embedded && series.data != nullptr) {
      json::Array samples;
      samples.reserve(series.data->samples.size());
      for (const storage::MetricSample& s : series.data->samples) {
        samples.push_back(json::make_object(
            {{"step", s.step}, {"time", s.timestamp_ms}, {"value", s.value}}));
      }
      attrs.emplace_back("provml:data", prov::AttributeValue{json::Value(std::move(samples))});
    }
    doc.add_entity(metric_id, std::move(attrs));
    doc.was_generated_by(metric_id, ctx_id);
    if (!store_id.empty()) doc.had_member(store_id, metric_id);
  }

  // Artifacts: inputs are used, outputs generated — by their context's
  // activity when one is named, by the run otherwise (paper Figure 1 shows
  // both relationship kinds).
  for (const Artifact& artifact : artifacts_) {
    const std::string artifact_id = "ex:artifact/" + artifact.name;
    doc.add_entity(artifact_id, {{"prov:type", "provml:Artifact"},
                                 {"provml:path", artifact.path},
                                 {"provml:role", role_string(artifact.role)}});
    const std::string subject =
        artifact.context.empty() ? run_id : context_activity(artifact.context);
    if (artifact.role == IoRole::kInput) {
      doc.used(subject, artifact_id);
    } else {
      doc.was_generated_by(artifact_id, subject);
    }
  }

  if (source_code_) {
    doc.add_entity("ex:source_code", {{"prov:type", "provml:SourceCode"},
                                      {"provml:path", *source_code_}});
    doc.used(run_id, "ex:source_code", strings::iso8601_utc(started_ms_));
  }

  if (!environment_.empty()) {
    prov::Attributes attrs{{"prov:type", "provml:Environment"}};
    for (const auto& [key, value] : environment_) {
      attrs.emplace_back("provml:" + key, prov::AttributeValue{value});
    }
    doc.add_entity("ex:environment", std::move(attrs));
    doc.used(run_id, "ex:environment", strings::iso8601_utc(started_ms_));
  }

  document_ = std::move(doc);
}

Status Run::finish() {
  if (finished_) return Status::ok_status();
  if (sampler_) sampler_->stop();
  finished_ms_ = sysmon::now_ms();
  finished_ = true;

  const std::lock_guard<std::mutex> lock(mutex_);

  std::error_code ec;
  fs::create_directories(options_.provenance_dir, ec);
  if (ec) return Error{"cannot create provenance dir: " + ec.message(),
                       options_.provenance_dir};

  build_document();

  // Metric side store. Streaming: hand the staged tails to the flusher,
  // drain it, and seal — the bulk of the data is already on disk. Batch:
  // the whole set is serialized here (through the same sink machinery,
  // via MetricStore::write).
  if (streaming_) {
    for (const auto& series : stream_series_) {
      if (series->staged.empty()) continue;
      MetricChunk chunk{series->name, series->context, series->unit,
                        std::move(series->staged)};
      series->staged = {};
      (void)flush_queue_->push(std::move(chunk));
    }
    flush_queue_->close();
    if (flusher_.joinable()) flusher_.join();
    Status s = stream_status_;  // flusher has exited: safe to read
    if (s.ok()) s = sink_->seal();
    if (!s.ok()) return s;
  } else if (!stream_status_.ok()) {
    return stream_status_;  // streaming was requested but never opened
  } else if (options_.metric_store != "embedded" && !metrics_.empty()) {
    const auto store = storage::StoreRegistry::global().create(options_.metric_store);
    if (store == nullptr) {
      return Error{"unknown metric store: " + options_.metric_store, run_name_};
    }
    Status s = store->write(metrics_, metric_store_path());
    if (!s.ok()) return s;
  }

  Status s = prov::write_prov_json_file(provenance_path(), document_, options_.pretty_json);
  if (!s.ok()) return s;

  if (options_.write_prov_n) {
    const std::string text = prov::to_prov_n(document_);
    std::string path =
        (fs::path(options_.provenance_dir) / (run_name_ + ".provn")).string();
    s = compress::write_file_bytes(
        path, {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
    if (!s.ok()) return s;
  }
  if (options_.write_dot) {
    const std::string text = prov::to_dot(document_);
    std::string path = (fs::path(options_.provenance_dir) / (run_name_ + ".dot")).string();
    s = compress::write_file_bytes(
        path, {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
    if (!s.ok()) return s;
  }

  if (options_.create_rocrate) {
    rocrate::CrateBuilder crate(options_.provenance_dir);
    crate.set_name(experiment_name_ + "/" + run_name_)
        .set_description("provml run artifacts");
    crate.add_author(options_.user);
    s = crate.add_all();
    if (!s.ok()) return s;
    s = crate.write();
    if (!s.ok()) return s;
  }
  return Status::ok_status();
}

Run& Experiment::start_run(RunOptions options, const std::string& run_name) {
  std::string name = run_name.empty() ? "run_" + std::to_string(next_run_++) : run_name;
  runs_.push_back(std::unique_ptr<Run>(new Run(name_, std::move(name), std::move(options))));
  return *runs_.back();
}

prov::Document Experiment::combined_document() const {
  prov::Document doc;
  doc.declare_namespace("provml", kProvmlNamespace);
  doc.declare_namespace("ex", "urn:provml:" + name_ + "/");
  doc.add_entity("ex:experiment", {{"prov:type", "provml:Experiment"},
                                   {"provml:name", name_},
                                   {"provml:runs", static_cast<std::int64_t>(runs_.size())}});
  for (const auto& run : runs_) {
    if (!run->finished()) continue;
    doc.bundle("ex:" + run->name()) = run->document();
  }
  return doc;
}

Status Experiment::write_combined_provenance(const std::string& path, bool pretty) const {
  return prov::write_prov_json_file(path, combined_document(), pretty);
}

Status Experiment::finish_all() {
  for (const auto& run : runs_) {
    if (!run->finished()) {
      Status s = run->finish();
      if (!s.ok()) return s;
    }
  }
  return Status::ok_status();
}

}  // namespace provml::core
