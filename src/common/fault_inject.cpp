#include "provml/common/fault_inject.hpp"

#include <atomic>
#include <map>
#include <mutex>

namespace provml::fault {
namespace {

/// SplitMix64 step: the probability stream must be cheap and seedable
/// without dragging <random> into every translation unit.
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

struct PointState {
  FaultPlan plan;
  std::uint64_t rng_state = 0;
  std::uint64_t hits = 0;
  std::uint64_t failures = 0;
};

}  // namespace

struct FaultInjector::Impl {
  std::atomic<int> armed_count{0};
  mutable std::mutex mutex;
  std::map<std::string, PointState, std::less<>> points;
};

FaultInjector::Impl& FaultInjector::impl() const {
  static Impl instance;
  return instance;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultPlan plan) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  PointState state;
  state.plan = plan;
  state.rng_state = plan.seed;
  const auto [it, inserted] = i.points.insert_or_assign(point, state);
  (void)it;
  if (inserted) i.armed_count.fetch_add(1, std::memory_order_release);
}

void FaultInjector::disarm(const std::string& point) {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  if (i.points.erase(point) != 0) {
    i.armed_count.fetch_sub(1, std::memory_order_release);
  }
}

void FaultInjector::disarm_all() {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  i.armed_count.store(0, std::memory_order_release);
  i.points.clear();
}

bool FaultInjector::check(std::string_view point) {
  Impl& i = impl();
  if (i.armed_count.load(std::memory_order_acquire) == 0) return false;
  const std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.points.find(point);
  if (it == i.points.end()) return false;
  PointState& state = it->second;
  ++state.hits;
  bool fire = false;
  if (state.plan.fail_on_nth != 0) {
    fire = state.hits == state.plan.fail_on_nth;
  } else if (state.plan.probability > 0.0) {
    const double draw =
        static_cast<double>(splitmix64(state.rng_state) >> 11) * 0x1.0p-53;
    fire = draw < state.plan.probability;
  }
  if (fire) ++state.failures;
  return fire;
}

std::uint64_t FaultInjector::hits(std::string_view point) const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::failures(std::string_view point) const {
  Impl& i = impl();
  const std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.points.find(point);
  return it == i.points.end() ? 0 : it->second.failures;
}

bool triggered(std::string_view point) { return FaultInjector::global().check(point); }

}  // namespace provml::fault
