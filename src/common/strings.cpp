#include "provml/common/strings.hpp"

#include <array>
#include <cstdio>
#include <ctime>

namespace provml::strings {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string pad(std::uint64_t value, int width) {
  std::string digits = std::to_string(value);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<std::size_t>(width) - digits.size(), '0') + digits;
}

std::string iso8601_utc(std::int64_t epoch_ms) {
  const std::time_t seconds = static_cast<std::time_t>(epoch_ms / 1000);
  const int millis = static_cast<int>(epoch_ms % 1000 + (epoch_ms % 1000 < 0 ? 1000 : 0));
  std::tm tm_utc{};
  gmtime_r(&seconds, &tm_utc);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday, tm_utc.tm_hour,
                tm_utc.tm_min, tm_utc.tm_sec, millis);
  return buf;
}

}  // namespace provml::strings
