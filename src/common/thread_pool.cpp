#include "provml/common/thread_pool.hpp"

#include <algorithm>

namespace provml::common {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace provml::common
