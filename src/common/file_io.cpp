#include "provml/common/file_io.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "provml/common/fault_inject.hpp"

namespace provml::io {
namespace {

Error errno_error(const std::string& what, const std::string& path) {
  return Error{what + ": " + std::strerror(errno), path};
}

/// Writes all of `data` to `fd`, honoring the "storage.write" fault point.
/// An injected fault writes only a prefix first, so the temp file is left
/// genuinely torn — the way a crashed process would leave it.
Status write_fd_all(int fd, std::span<const std::uint8_t> data, const std::string& path) {
  if (fault::triggered("storage.write")) {
    const std::size_t half = data.size() / 2;
    std::size_t done = 0;
    while (done < half) {
      const ssize_t n = ::write(fd, data.data() + done, half - done);
      if (n <= 0) break;
      done += static_cast<std::size_t>(n);
    }
    return Error{"write failed (injected fault)", path};
  }
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("write failed", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::ok_status();
}

}  // namespace

Expected<std::vector<std::uint8_t>> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return errno_error("cannot open file", path);
  std::vector<std::uint8_t> data;
  struct stat st{};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    data.reserve(static_cast<std::size_t>(st.st_size));
  }
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Error e = errno_error("read failed", path);
      ::close(fd);
      return e;
    }
    if (n == 0) break;
    data.insert(data.end(), buf, buf + n);
  }
  ::close(fd);
  return data;
}

Status write_file_atomic(const std::string& path, std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_error("cannot open file for writing", tmp);

  Status written = write_fd_all(fd, data, tmp);
  if (!written.ok()) {
    ::close(fd);
    return written;  // tmp left behind, torn — path is untouched
  }
  if (fault::triggered("storage.fsync")) {
    ::close(fd);
    return Error{"fsync failed (injected fault)", tmp};
  }
  if (::fsync(fd) != 0) {
    const Error e = errno_error("fsync failed", tmp);
    ::close(fd);
    return e;
  }
  if (::close(fd) != 0) return errno_error("close failed", tmp);

  if (fault::triggered("storage.rename")) {
    return Error{"rename failed (injected fault)", path};
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return errno_error("rename failed", path);
  }
  return Status::ok_status();
}

Status write_text_atomic(const std::string& path, std::string_view text) {
  return write_file_atomic(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

Status write_file_direct(const std::string& path, std::span<const std::uint8_t> data) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return errno_error("cannot open file for writing", path);
  Status written = write_fd_all(fd, data, path);
  ::close(fd);
  return written;
}

}  // namespace provml::io
