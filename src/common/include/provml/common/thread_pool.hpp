// Fixed-size worker pool with a shared task queue. One process-wide pool
// (shared()) serves every subsystem that wants background CPU work — the
// zarr sink's parallel chunk encoding, the sweep engine's scaling-study
// grid — so thread count stays bounded no matter how many runs or sweeps
// are live. Callers that need an isolated pool (benches sweeping worker
// counts) construct their own.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace provml::common {

class ThreadPool {
 public:
  /// `workers` == 0 selects hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned workers = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool, created on first use and sized to the
  /// hardware. Never destroyed before main() returns.
  static ThreadPool& shared();

  /// Enqueues a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  [[nodiscard]] unsigned worker_count() const {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace provml::common
