// Named fault points for deterministic failure injection. Production I/O
// code calls fault::triggered("storage.write") at its seams; the call is a
// single relaxed atomic load when nothing is armed, so it is safe to leave
// in hot paths. Tests arm points through testkit (ScopedFault) to make the
// Nth hit — or a seeded fraction of hits — fail with a typed error.
//
// Fault-point catalog (see TESTING.md for the full table):
//   storage.write         file payload write (before bytes reach the fd)
//   storage.fsync         fsync of a freshly written temp file
//   storage.rename        the atomic rename publishing a temp file
//   net.send              socket send() in the HTTP server and client
//   compress.decode_alloc output-buffer allocation inside codec decoders
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace provml::fault {

/// How an armed fault point decides to fire.
struct FaultPlan {
  /// Fire on exactly the Nth call to triggered() after arming (1-based).
  /// 0 disables the counter and uses `probability` instead.
  std::uint64_t fail_on_nth = 0;
  /// Seeded per-hit failure probability in [0, 1]; used when fail_on_nth
  /// is 0. The stream is derived from `seed`, so runs are reproducible.
  double probability = 0.0;
  std::uint64_t seed = 1;
};

/// Process-wide registry of named fault points. Thread-safe; disarmed
/// checks cost one atomic load (no lock, no lookup).
class FaultInjector {
 public:
  static FaultInjector& global();

  void arm(const std::string& point, FaultPlan plan);
  void disarm(const std::string& point);
  void disarm_all();

  /// Records a hit on `point` and returns whether it should fail now.
  /// Unarmed points return false without taking the lock.
  [[nodiscard]] bool check(std::string_view point);

  /// Total hits on `point` since it was armed (0 when unarmed).
  [[nodiscard]] std::uint64_t hits(std::string_view point) const;
  /// Number of times `point` actually fired since it was armed.
  [[nodiscard]] std::uint64_t failures(std::string_view point) const;

 private:
  FaultInjector() = default;
  struct Impl;
  Impl& impl() const;
};

/// Convenience used at instrumentation sites:
///   if (fault::triggered("storage.write")) return Error{...};
[[nodiscard]] bool triggered(std::string_view point);

/// RAII arming: arms in the constructor, disarms in the destructor, so a
/// failing test cannot leak an armed fault into later tests.
class ScopedFault {
 public:
  ScopedFault(std::string point, FaultPlan plan) : point_(std::move(point)) {
    FaultInjector::global().arm(point_, plan);
  }
  ~ScopedFault() { FaultInjector::global().disarm(point_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  [[nodiscard]] std::uint64_t hits() const { return FaultInjector::global().hits(point_); }
  [[nodiscard]] std::uint64_t failures() const {
    return FaultInjector::global().failures(point_);
  }

 private:
  std::string point_;
};

}  // namespace provml::fault
