// Minimal result type used on parse/IO paths where failure is a normal
// outcome rather than a programmer error (C++ Core Guidelines E.3).
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace provml {

/// Error payload carried by Expected<T>. `where` is a best-effort locator
/// (file path, byte offset, or "line:col" depending on the producer).
struct Error {
  std::string message;
  std::string where;

  [[nodiscard]] std::string to_string() const {
    return where.empty() ? message : where + ": " + message;
  }
};

/// Lightweight expected/result type: holds either a T or an Error.
/// `value()` throws std::runtime_error when called on an error result, so
/// callers that have already checked `ok()` can use it without ceremony.
template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() {
    if (!ok()) throw std::runtime_error("Expected: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const {
    if (!ok()) throw std::runtime_error("Expected: " + error().to_string());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() {
    if (!ok()) throw std::runtime_error("Expected: " + error().to_string());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const { return std::get<Error>(data_); }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Expected<void> analogue for operations with no payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Error& error() const { return error_; }

 private:
  Error error_;
  bool failed_ = false;
};

}  // namespace provml
