// Bounded multi-producer / single-consumer handoff queue. Producers block
// in push() once `capacity` items are in flight — that blocking IS the
// backpressure contract the streaming write path relies on: a training
// loop logging faster than the flusher can encode+write slows down instead
// of growing an unbounded buffer. close() wakes everyone; pop() then
// drains the remaining items and finally returns nullopt.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace provml::common {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false —
  /// dropping `item` — only on a closed queue.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item arrives; nullopt once closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes accepted; pending items remain poppable.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace provml::common
