// Small string helpers shared across modules.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace provml::strings {

[[nodiscard]] inline bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] inline bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

[[nodiscard]] inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\n' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\n' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

[[nodiscard]] inline std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(begin, i - begin));
      begin = i + 1;
    }
  }
  return parts;
}

[[nodiscard]] inline std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

[[nodiscard]] inline std::optional<std::int64_t> to_int64(std::string_view s) {
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

[[nodiscard]] inline std::optional<double> to_double(std::string_view s) {
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Formats bytes with binary-prefix units, e.g. "39.82 MB" (paper Table 1 style).
[[nodiscard]] std::string human_bytes(std::uint64_t bytes);

/// Zero-padded fixed-width decimal, e.g. pad(7, 3) == "007".
[[nodiscard]] std::string pad(std::uint64_t value, int width);

/// Epoch milliseconds → ISO-8601 UTC instant, e.g. "2025-07-05T12:30:00.123Z".
[[nodiscard]] std::string iso8601_utc(std::int64_t epoch_ms);

}  // namespace provml::strings
