// File I/O seam shared by every store and serializer. All provml writes
// go through write_file_atomic: bytes land in "<path>.tmp", are fsync'd,
// and are published with rename(2), so a failure at any point — including
// an injected one — leaves either the old file or no file, never a torn
// file that later parses as valid data. Fault points (fault_inject.hpp):
// "storage.write", "storage.fsync", "storage.rename".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::io {

/// Reads a whole file into memory.
[[nodiscard]] Expected<std::vector<std::uint8_t>> read_file(const std::string& path);

/// Atomic replace: write to "<path>.tmp", fsync, rename over `path`.
/// On failure (real or injected) the temp file may remain — simulating a
/// crash mid-write — but `path` itself is never half-written.
[[nodiscard]] Status write_file_atomic(const std::string& path,
                                       std::span<const std::uint8_t> data);
[[nodiscard]] Status write_text_atomic(const std::string& path, std::string_view text);

/// Direct truncating write with no temp file; only for callers that
/// explicitly want torn-write semantics (e.g. the fuzz harness when
/// planting corrupt files).
[[nodiscard]] Status write_file_direct(const std::string& path,
                                       std::span<const std::uint8_t> data);

}  // namespace provml::io
