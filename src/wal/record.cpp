#include "provml/wal/record.hpp"

#include "provml/compress/crc32.hpp"
#include "provml/compress/varint.hpp"

namespace provml::wal {
namespace {

void append_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

std::uint32_t read_u32le(std::span<const std::uint8_t> bytes, std::size_t offset) {
  return static_cast<std::uint32_t>(bytes[offset]) |
         (static_cast<std::uint32_t>(bytes[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(bytes[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(bytes[offset + 3]) << 24);
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  compress::varint_append(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> encode_payload(const Record& record) {
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + record.name.size() + record.body.size() + 10);
  payload.push_back(static_cast<std::uint8_t>(record.type));
  append_string(payload, record.name);
  append_string(payload, record.body);
  return payload;
}

/// Reads a varint-prefixed string out of `payload`; false on any overrun.
bool read_string(std::span<const std::uint8_t> payload, std::size_t& offset,
                 std::string& out) {
  Expected<std::uint64_t> len = compress::varint_read(payload, offset);
  if (!len.ok()) return false;
  if (len.value() > payload.size() - offset) return false;
  out.assign(reinterpret_cast<const char*>(payload.data() + offset),
             static_cast<std::size_t>(len.value()));
  offset += static_cast<std::size_t>(len.value());
  return true;
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out, const Record& record) {
  const std::vector<std::uint8_t> payload = encode_payload(record);
  compress::varint_append(out, payload.size());
  append_u32le(out, compress::crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::size_t frame_size(const Record& record) {
  std::vector<std::uint8_t> frame;
  append_frame(frame, record);
  return frame.size();
}

DecodeResult decode_frame(std::span<const std::uint8_t> bytes, std::size_t offset) {
  DecodeResult result;
  if (offset >= bytes.size()) {
    result.status = DecodeStatus::kEnd;
    return result;
  }
  // The length varint itself can be torn: varint_read fails on both a
  // truncated continuation chain and a >10-byte chain. Distinguish by
  // whether the bytes simply ran out.
  std::size_t cursor = offset;
  Expected<std::uint64_t> len = compress::varint_read(bytes, cursor);
  if (!len.ok()) {
    bool all_continuation = true;
    for (std::size_t i = offset; i < bytes.size() && i < offset + 10; ++i) {
      if ((bytes[i] & 0x80) == 0) all_continuation = false;
    }
    result.status = all_continuation && bytes.size() - offset < 10
                        ? DecodeStatus::kTorn
                        : DecodeStatus::kCorrupt;
    return result;
  }
  if (len.value() > kMaxRecordPayload) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  if (bytes.size() - cursor < 4) {
    result.status = DecodeStatus::kTorn;
    return result;
  }
  const std::uint32_t expected_crc = read_u32le(bytes, cursor);
  cursor += 4;
  if (bytes.size() - cursor < len.value()) {
    result.status = DecodeStatus::kTorn;
    return result;
  }
  const std::span<const std::uint8_t> payload = bytes.subspan(cursor, len.value());
  cursor += static_cast<std::size_t>(len.value());
  if (compress::crc32(payload) != expected_crc) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }

  std::size_t p = 0;
  if (payload.empty()) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  const std::uint8_t type = payload[p++];
  if (type != static_cast<std::uint8_t>(Record::Type::kPutDocument) &&
      type != static_cast<std::uint8_t>(Record::Type::kDeleteDocument)) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  Record record;
  record.type = static_cast<Record::Type>(type);
  if (!read_string(payload, p, record.name) || !read_string(payload, p, record.body) ||
      p != payload.size()) {
    result.status = DecodeStatus::kCorrupt;
    return result;
  }
  result.status = DecodeStatus::kOk;
  result.record = std::move(record);
  result.next_offset = cursor;
  return result;
}

}  // namespace provml::wal
