// Logical mutation records and their on-disk framing for the provml WAL.
//
// A WAL segment is a flat byte sequence of frames:
//
//   frame   := varint(payload_len) ++ u32le crc32(payload) ++ payload
//   payload := u8 type ++ varint(name_len) ++ name ++ varint(body_len) ++ body
//
// The length prefix and CRC together make torn tails detectable: a frame
// whose bytes run out mid-way decodes as kTorn, a frame whose checksum or
// payload structure is wrong decodes as kCorrupt, and recovery truncates
// the log at the first frame that is either. The varint and crc32
// primitives are provml_compress's — the same ones the container format
// already trusts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace provml::wal {

/// Log sequence number: 1-based, dense, assigned at append time. LSN order
/// is mutation order; a snapshot at LSN n captures exactly records 1..n.
using Lsn = std::uint64_t;

/// One logical mutation against the document store.
struct Record {
  enum class Type : std::uint8_t {
    kPutDocument = 1,     ///< body carries the compact PROV-JSON
    kDeleteDocument = 2,  ///< body empty
  };

  Type type = Type::kPutDocument;
  std::string name;
  std::string body;

  friend bool operator==(const Record&, const Record&) = default;
};

/// Frames `record` and appends the bytes to `out`.
void append_frame(std::vector<std::uint8_t>& out, const Record& record);

/// Serialized frame size of `record` (what append_frame would add).
[[nodiscard]] std::size_t frame_size(const Record& record);

/// Outcome of decoding one frame at a given offset.
enum class DecodeStatus {
  kOk,      ///< record decoded; next_offset points past the frame
  kEnd,     ///< offset is exactly at the end of the bytes — clean EOF
  kTorn,    ///< bytes end mid-frame (crashed writer); truncate here
  kCorrupt  ///< CRC mismatch or malformed payload; truncate here
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kEnd;
  Record record;                 ///< valid only when status == kOk
  std::size_t next_offset = 0;   ///< valid only when status == kOk
};

/// Decodes the frame starting at `offset` in `bytes`.
[[nodiscard]] DecodeResult decode_frame(std::span<const std::uint8_t> bytes,
                                        std::size_t offset);

/// Upper bound on a single frame's payload; larger declared lengths are
/// treated as corruption rather than torn tails, so a flipped length byte
/// cannot make recovery wait for gigabytes that were never written.
inline constexpr std::uint64_t kMaxRecordPayload = 256ull * 1024 * 1024;

}  // namespace provml::wal
