// provml_wal — durable document store: append-only write-ahead log with
// group commit, log segmentation, snapshot compaction, and crash recovery.
//
// On-disk layout of a store directory:
//
//   wal-<lsn16hex>.seg   append-only segments of CRC-framed records; the
//                        hex field is the LSN of the segment's first record
//   snap-<lsn16hex>.pws  full document snapshot as of that LSN, written
//                        atomically (tmp + fsync + rename)
//
// Durability contract: append() returns an LSN only after the record's
// frame is fully on the active segment (and fsync'd, per policy). A record
// that was never acknowledged is never visible after recovery: failed
// appends truncate the segment back to the last acknowledged byte, and
// recover() truncates the log at the first torn or CRC-failing frame. So
// the recovered document set is always the fold of exactly the
// acknowledged record prefix.
//
// Group commit (kEveryWrite): concurrent appenders coalesce into shared
// fsyncs. Each append writes its frame under the metadata lock (LSNs stay
// dense, in log order), then joins a leader/follower protocol: the first
// waiter becomes the leader, drops the lock, and issues ONE fsync covering
// every frame written so far; followers block until a covering fsync (or
// failure) resolves them. Acknowledgment still happens only after the
// covering fsync — the durability contract is unchanged, only the
// fsync-per-acknowledgment ratio drops. A failed group fsync fails every
// pending append and truncates back to the last acknowledged byte.
//
// Fsync policy trade-off (what an acknowledged write survives):
//   kEveryWrite  host power loss — fsync before every acknowledgement
//   kInterval    process crash always; power loss up to `fsync_interval` old
//   kNone        process crash only (bytes are in the page cache)
//
// Compaction replays the store's *own files* up to a frozen LSN and writes
// a snapshot — it never reads service memory, so it runs on a background
// thread with only brief metadata locking, and a crash mid-compaction
// leaves the previous snapshot + segments fully authoritative.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "provml/common/expected.hpp"
#include "provml/wal/record.hpp"

namespace provml::wal {

enum class FsyncPolicy { kEveryWrite, kInterval, kNone };

/// Parses "every_write" | "interval" | "none" (the --fsync CLI values).
[[nodiscard]] Expected<FsyncPolicy> parse_fsync_policy(const std::string& text);
[[nodiscard]] const char* to_string(FsyncPolicy policy);

struct Options {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryWrite;
  /// Segment rotation threshold; the active segment is sealed (fsync'd)
  /// once it crosses this size.
  std::uint64_t segment_bytes = 4ull * 1024 * 1024;
  /// Max staleness between fsyncs under FsyncPolicy::kInterval.
  std::chrono::milliseconds fsync_interval{50};
  /// Records appended between automatic compactions; 0 = manual only.
  std::uint64_t compact_every = 4096;
  /// Run automatic compaction on a background thread (true for servers;
  /// tests use false for deterministic synchronous compaction).
  bool background_compaction = true;
};

struct Stats {
  Lsn last_lsn = 0;
  Lsn snapshot_lsn = 0;
  std::size_t segment_count = 0;
  std::uint64_t records_since_compaction = 0;
  std::uint64_t compactions = 0;
  /// Seconds since the last completed compaction; negative = never.
  double seconds_since_compaction = -1.0;
  std::uint64_t fsyncs = 0;
  std::uint64_t fsync_us_total = 0;
  std::uint64_t appended_bytes = 0;
  /// Acknowledged appends; under kEveryWrite group commit this can exceed
  /// `fsyncs` — the gap is the batching win.
  std::uint64_t appends = 0;
};

/// One segment's replay accounting, reported by recover().
struct SegmentInfo {
  std::string path;
  Lsn first_lsn = 0;
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;  ///< valid bytes (post torn-tail truncation)
};

struct RecoveredState {
  /// name → compact PROV-JSON body, the fold of snapshot + replayed tail.
  std::map<std::string, std::string> documents;
  Lsn last_lsn = 0;
  Lsn snapshot_lsn = 0;
  std::uint64_t replayed_records = 0;
  std::uint64_t truncated_bytes = 0;    ///< torn/corrupt tail bytes dropped
  std::size_t dropped_segments = 0;     ///< segments past the first bad frame
  std::vector<SegmentInfo> segments;    ///< surviving segments, LSN order
};

/// Loads the newest valid snapshot and replays the WAL tail, truncating
/// the log at the first torn/CRC-failing record. Repairs in place: the
/// torn segment is ftruncate'd to its last valid frame, segments past it
/// and unreadable snapshots are deleted. A missing directory recovers to
/// the empty state.
[[nodiscard]] Expected<RecoveredState> recover(const std::string& dir);

/// Whether `dir` contains WAL files (segments or snapshots).
[[nodiscard]] bool store_exists(const std::string& dir);

/// Writes a full snapshot of `documents` at `lsn` into `dir`, atomically.
[[nodiscard]] Status write_snapshot(const std::string& dir,
                                    const std::map<std::string, std::string>& documents,
                                    Lsn lsn);

/// Replaces whatever store lives at `dir` with exactly `documents`: writes
/// a snapshot one LSN past the existing store's tail and removes the
/// now-covered segments. Used by detached YProvService::save().
[[nodiscard]] Status replace_store(const std::string& dir,
                                   const std::map<std::string, std::string>& documents);

/// The durable store handle: recovery at open, group-commit appends,
/// rotation, and (optionally background) snapshot compaction.
class DurableStore {
 public:
  /// Opens (creating if needed) the store at `dir`, running recovery.
  [[nodiscard]] static Expected<std::unique_ptr<DurableStore>> open(
      const std::string& dir, Options options = {});

  /// Joins the compaction thread and seals the active segment (fsync).
  ~DurableStore();

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  /// The state recovery produced at open(); documents are moved out by the
  /// caller that hydrates a service from them.
  [[nodiscard]] RecoveredState& recovered() { return recovered_; }

  /// Appends one record, honoring the fsync policy, and returns its LSN.
  /// Thread-safe. On failure the segment is truncated back to the last
  /// acknowledged byte, so a failed append is never replayed.
  [[nodiscard]] Expected<Lsn> append(const Record& record);

  /// Forces an fsync of the active segment (kInterval/kNone stores).
  [[nodiscard]] Status sync();

  /// Compacts now, synchronously: replays own files to a frozen LSN,
  /// writes snap-<lsn>.pws atomically, then deletes covered segments and
  /// older snapshots. Safe to call concurrently with append().
  [[nodiscard]] Status compact();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] const Options& options() const { return options_; }

 private:
  DurableStore(std::string dir, Options options);

  struct Segment {
    std::string path;
    Lsn first_lsn = 0;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;  ///< acknowledged bytes
  };

  [[nodiscard]] Status open_active_segment_locked();
  [[nodiscard]] Status rotate_if_needed_locked(std::unique_lock<std::mutex>& lock);
  [[nodiscard]] Status fsync_active_locked();
  /// Waits out any in-flight group fsync, then fsyncs inline (lock held)
  /// and acknowledges everything pending — used by rotation, sync(), and
  /// shutdown, where an up-to-date sealed file matters more than overlap.
  [[nodiscard]] Status sync_pending_locked(std::unique_lock<std::mutex>& lock);
  /// Credits a successful covering fsync: pending frames become
  /// acknowledged bytes/records of the active segment.
  void ack_pending_locked();
  /// Fails every pending append: rolls their LSNs back, truncates the tail
  /// to the last acknowledged byte, and wakes the waiters.
  void fail_pending_locked();
  /// Truncates the active segment to `keep_bytes` (ftruncate; O_APPEND
  /// makes the next write land there). Failure marks the store broken.
  void repair_tail_locked(std::uint64_t keep_bytes);
  [[nodiscard]] Status compact_impl();
  void compaction_loop();

  const std::string dir_;
  const Options options_;

  mutable std::mutex mutex_;
  int fd_ = -1;                       ///< active segment
  std::vector<Segment> segments_;     ///< [0..n-2] sealed, back() active
  Lsn last_lsn_ = 0;
  Lsn snapshot_lsn_ = 0;
  bool broken_ = false;               ///< unrepairable tail; appends fail
  std::chrono::steady_clock::time_point last_fsync_ = std::chrono::steady_clock::now();
  std::uint64_t records_since_compaction_ = 0;
  std::uint64_t compactions_ = 0;
  std::chrono::steady_clock::time_point last_compaction_{};
  bool compacted_once_ = false;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t fsync_us_total_ = 0;
  std::uint64_t appended_bytes_ = 0;
  std::uint64_t appends_ = 0;

  // Group commit (guarded by mutex_). Tickets are monotonic and never
  // rolled back, unlike LSNs: an append writes its frame, takes ticket
  // ++write_seq_, and is resolved once synced_seq_ (acknowledged) or
  // failed_upto_ (failed) reaches its ticket. pending_* counts frames
  // written to the active segment but not yet covered by an fsync —
  // Segment::bytes/records hold only *acknowledged* frames.
  std::uint64_t write_seq_ = 0;
  std::uint64_t synced_seq_ = 0;
  std::uint64_t failed_upto_ = 0;
  bool sync_in_flight_ = false;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t pending_records_ = 0;
  std::condition_variable sync_cv_;

  RecoveredState recovered_;

  // Background compaction: append() signals when the record budget is
  // spent; only one compaction runs at a time (compact_mutex_).
  std::mutex compact_mutex_;
  std::thread compaction_thread_;
  std::condition_variable compaction_cv_;
  bool stop_ = false;
  bool compaction_due_ = false;
};

}  // namespace provml::wal
