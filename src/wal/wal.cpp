#include "provml/wal/wal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string_view>
#include <utility>

#include "provml/common/fault_inject.hpp"
#include "provml/common/file_io.hpp"
#include "provml/compress/crc32.hpp"
#include "provml/compress/varint.hpp"

namespace provml::wal {
namespace {

namespace fs = std::filesystem;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".seg";
constexpr char kSnapshotPrefix[] = "snap-";
constexpr char kSnapshotSuffix[] = ".pws";
constexpr char kSnapshotMagic[4] = {'P', 'W', 'S', '1'};

Error errno_error(const std::string& what, const std::string& path) {
  return Error{what + ": " + std::strerror(errno), path};
}

std::string lsn_hex(Lsn lsn) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(lsn));
  return buf;
}

std::string segment_path(const std::string& dir, Lsn first_lsn) {
  return (fs::path(dir) / (kSegmentPrefix + lsn_hex(first_lsn) + kSegmentSuffix)).string();
}

std::string snapshot_path(const std::string& dir, Lsn lsn) {
  return (fs::path(dir) / (kSnapshotPrefix + lsn_hex(lsn) + kSnapshotSuffix)).string();
}

/// Parses "<prefix><16 hex digits><suffix>"; nullopt when it doesn't match.
std::optional<Lsn> parse_lsn_name(const std::string& name, std::string_view prefix,
                                  std::string_view suffix) {
  if (name.size() != prefix.size() + 16 + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(prefix.size() + 16, suffix.size(), suffix) != 0) return std::nullopt;
  Lsn lsn = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    lsn <<= 4;
    if (c >= '0' && c <= '9') lsn |= static_cast<Lsn>(c - '0');
    else if (c >= 'a' && c <= 'f') lsn |= static_cast<Lsn>(c - 'a' + 10);
    else return std::nullopt;
  }
  return lsn;
}

/// Best-effort directory fsync so freshly created/renamed entries survive
/// power loss. Failure is ignored: some filesystems reject O_RDONLY dirs.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  (void)::fsync(fd);
  ::close(fd);
}

// ------------------------------------------------------------- snapshots
//
//   "PWS1" ++ varint(lsn) ++ varint(count)
//          ++ count * (varint(name_len) name varint(body_len) body)
//          ++ u32le crc32(everything before the trailer)

std::vector<std::uint8_t> encode_snapshot(
    const std::map<std::string, std::string>& documents, Lsn lsn) {
  std::vector<std::uint8_t> out;
  out.reserve(64);
  for (const char c : kSnapshotMagic) out.push_back(static_cast<std::uint8_t>(c));
  compress::varint_append(out, lsn);
  compress::varint_append(out, documents.size());
  for (const auto& [name, body] : documents) {
    compress::varint_append(out, name.size());
    out.insert(out.end(), name.begin(), name.end());
    compress::varint_append(out, body.size());
    out.insert(out.end(), body.begin(), body.end());
  }
  const std::uint32_t crc = compress::crc32(out);
  out.push_back(static_cast<std::uint8_t>(crc & 0xFF));
  out.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((crc >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((crc >> 24) & 0xFF));
  return out;
}

struct DecodedSnapshot {
  std::map<std::string, std::string> documents;
  Lsn lsn = 0;
};

Expected<DecodedSnapshot> decode_snapshot(std::span<const std::uint8_t> bytes,
                                          const std::string& path) {
  if (bytes.size() < 4 + 4 || std::memcmp(bytes.data(), kSnapshotMagic, 4) != 0) {
    return Error{"not a provml snapshot", path};
  }
  const std::span<const std::uint8_t> body = bytes.first(bytes.size() - 4);
  const std::span<const std::uint8_t> tail = bytes.last(4);
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(tail[0]) | (static_cast<std::uint32_t>(tail[1]) << 8) |
      (static_cast<std::uint32_t>(tail[2]) << 16) |
      (static_cast<std::uint32_t>(tail[3]) << 24);
  if (compress::crc32(body) != stored_crc) {
    return Error{"snapshot CRC mismatch", path};
  }
  DecodedSnapshot snapshot;
  std::size_t offset = 4;
  Expected<std::uint64_t> lsn = compress::varint_read(body, offset);
  if (!lsn.ok()) return Error{"malformed snapshot header", path};
  snapshot.lsn = lsn.value();
  Expected<std::uint64_t> count = compress::varint_read(body, offset);
  if (!count.ok()) return Error{"malformed snapshot header", path};
  const auto read_string = [&](std::string& out) -> bool {
    Expected<std::uint64_t> len = compress::varint_read(body, offset);
    if (!len.ok() || len.value() > body.size() - offset) return false;
    out.assign(reinterpret_cast<const char*>(body.data() + offset),
               static_cast<std::size_t>(len.value()));
    offset += static_cast<std::size_t>(len.value());
    return true;
  };
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    std::string name;
    std::string doc_body;
    if (!read_string(name) || !read_string(doc_body)) {
      return Error{"malformed snapshot entry", path};
    }
    snapshot.documents[std::move(name)] = std::move(doc_body);
  }
  if (offset != body.size()) return Error{"snapshot has trailing bytes", path};
  return snapshot;
}

void apply_record(std::map<std::string, std::string>& documents, const Record& record) {
  if (record.type == Record::Type::kPutDocument) {
    documents[record.name] = record.body;
  } else {
    documents.erase(record.name);
  }
}

/// Segment + snapshot listing of a store directory, LSN-sorted.
struct DirListing {
  std::vector<std::pair<Lsn, std::string>> segments;   ///< ascending first-LSN
  std::vector<std::pair<Lsn, std::string>> snapshots;  ///< descending LSN
};

DirListing list_store(const std::string& dir) {
  DirListing listing;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (const auto lsn = parse_lsn_name(name, kSegmentPrefix, kSegmentSuffix)) {
      listing.segments.emplace_back(*lsn, entry.path().string());
    } else if (const auto snap = parse_lsn_name(name, kSnapshotPrefix, kSnapshotSuffix)) {
      listing.snapshots.emplace_back(*snap, entry.path().string());
    }
  }
  std::sort(listing.segments.begin(), listing.segments.end());
  std::sort(listing.snapshots.begin(), listing.snapshots.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  return listing;
}

}  // namespace

Expected<FsyncPolicy> parse_fsync_policy(const std::string& text) {
  if (text == "every_write") return FsyncPolicy::kEveryWrite;
  if (text == "interval") return FsyncPolicy::kInterval;
  if (text == "none") return FsyncPolicy::kNone;
  return Error{"unknown fsync policy (want every_write|interval|none)", text};
}

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryWrite: return "every_write";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNone: return "none";
  }
  return "?";
}

bool store_exists(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return false;
  const DirListing listing = list_store(dir);
  return !listing.segments.empty() || !listing.snapshots.empty();
}

Status write_snapshot(const std::string& dir,
                      const std::map<std::string, std::string>& documents, Lsn lsn) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Error{"cannot create store directory: " + ec.message(), dir};
  Status written = io::write_file_atomic(snapshot_path(dir, lsn),
                                         encode_snapshot(documents, lsn));
  if (!written.ok()) return written;
  fsync_dir(dir);
  return Status::ok_status();
}

Expected<RecoveredState> recover(const std::string& dir) {
  RecoveredState state;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return state;  // empty store

  const DirListing listing = list_store(dir);

  // Leftover "*.tmp" files are crashed atomic writes; they were never
  // published, so they are garbage by contract.
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") fs::remove(entry.path(), ec);
  }

  // Newest snapshot that reads back valid wins; invalid ones are deleted
  // (the atomic-write discipline means they can only be damaged externally).
  for (const auto& [lsn, path] : listing.snapshots) {
    Expected<std::vector<std::uint8_t>> bytes = io::read_file(path);
    if (bytes.ok()) {
      Expected<DecodedSnapshot> snapshot = decode_snapshot(bytes.value(), path);
      if (snapshot.ok() && snapshot.value().lsn == lsn) {
        state.documents = std::move(snapshot.value().documents);
        state.snapshot_lsn = lsn;
        break;
      }
    }
    fs::remove(path, ec);
  }
  state.last_lsn = state.snapshot_lsn;

  // Replay segments in LSN order. The chain must be dense: a gap means a
  // segment went missing, so everything past it is not a valid prefix.
  bool stop = false;
  Lsn expected_first = listing.segments.empty() ? 0 : listing.segments.front().first;
  for (std::size_t i = 0; i < listing.segments.size(); ++i) {
    const auto& [first_lsn, path] = listing.segments[i];
    if (stop || first_lsn != expected_first) {
      ++state.dropped_segments;
      fs::remove(path, ec);
      stop = true;
      continue;
    }
    Expected<std::vector<std::uint8_t>> bytes = io::read_file(path);
    if (!bytes.ok()) {
      ++state.dropped_segments;
      fs::remove(path, ec);
      stop = true;
      continue;
    }
    SegmentInfo info;
    info.path = path;
    info.first_lsn = first_lsn;
    std::size_t offset = 0;
    Lsn lsn = first_lsn;
    for (;;) {
      DecodeResult frame = decode_frame(bytes.value(), offset);
      if (frame.status == DecodeStatus::kEnd) break;
      if (frame.status != DecodeStatus::kOk) {
        // Torn or corrupt: the log ends at the last valid frame. Truncate
        // the file in place so future appends and re-recovery agree.
        state.truncated_bytes += bytes.value().size() - offset;
        if (::truncate(path.c_str(), static_cast<off_t>(offset)) != 0) {
          return errno_error("cannot truncate torn segment", path);
        }
        stop = true;
        break;
      }
      if (lsn > state.snapshot_lsn) {
        apply_record(state.documents, frame.record);
        ++state.replayed_records;
        state.last_lsn = lsn;
      }
      ++info.records;
      ++lsn;
      offset = frame.next_offset;
    }
    info.bytes = offset;
    if (info.records == 0 && stop) {
      // Nothing valid in this segment: remove it rather than keeping an
      // empty file whose name may collide with the next append epoch.
      fs::remove(path, ec);
      ++state.dropped_segments;
    } else {
      state.segments.push_back(std::move(info));
      expected_first = first_lsn + state.segments.back().records;
    }
  }
  // A snapshot can be newer than every surviving record (segments deleted
  // by compaction); the tail position is whichever is further along.
  state.last_lsn = std::max(state.last_lsn, state.snapshot_lsn);
  return state;
}

Status replace_store(const std::string& dir,
                     const std::map<std::string, std::string>& documents) {
  Expected<RecoveredState> existing = recover(dir);
  if (!existing.ok()) return existing.error();
  const Lsn lsn = existing.value().last_lsn + 1;
  Status written = write_snapshot(dir, documents, lsn);
  if (!written.ok()) return written;
  // Everything older is now covered by the snapshot.
  std::error_code ec;
  const DirListing listing = list_store(dir);
  for (const auto& [seg_lsn, path] : listing.segments) fs::remove(path, ec);
  for (const auto& [snap_lsn, path] : listing.snapshots) {
    if (snap_lsn < lsn) fs::remove(path, ec);
  }
  return Status::ok_status();
}

// ---------------------------------------------------------- DurableStore

DurableStore::DurableStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options) {}

Expected<std::unique_ptr<DurableStore>> DurableStore::open(const std::string& dir,
                                                           Options options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Error{"cannot create store directory: " + ec.message(), dir};

  Expected<RecoveredState> recovered = recover(dir);
  if (!recovered.ok()) return recovered.error();

  std::unique_ptr<DurableStore> store(new DurableStore(dir, options));
  store->recovered_ = std::move(recovered.value());
  store->last_lsn_ = store->recovered_.last_lsn;
  store->snapshot_lsn_ = store->recovered_.snapshot_lsn;
  store->records_since_compaction_ = store->last_lsn_ - store->snapshot_lsn_;
  for (const SegmentInfo& info : store->recovered_.segments) {
    store->segments_.push_back(
        Segment{info.path, info.first_lsn, info.records, info.bytes});
  }
  {
    const std::lock_guard<std::mutex> lock(store->mutex_);
    Status opened = store->open_active_segment_locked();
    if (!opened.ok()) return opened.error();
  }
  if (options.background_compaction && options.compact_every > 0) {
    store->compaction_thread_ = std::thread([s = store.get()] { s->compaction_loop(); });
  }
  return store;
}

DurableStore::~DurableStore() {
  if (compaction_thread_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    compaction_cv_.notify_all();
    compaction_thread_.join();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  // Never close the fd under an in-flight group fsync.
  sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  if (fd_ >= 0) {
    (void)::fsync(fd_);  // best-effort seal; close() cannot report anyway
    ::close(fd_);
    fd_ = -1;
  }
}

Status DurableStore::open_active_segment_locked() {
  const Lsn first_lsn = last_lsn_ + 1;
  const std::string path = segment_path(dir_, first_lsn);
  // A crashed previous run can leave this exact segment empty on disk;
  // O_APPEND just resumes it. A non-empty file of this name cannot exist:
  // recovery would have counted its records into last_lsn_.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return errno_error("cannot open wal segment", path);
  fd_ = fd;
  if (!segments_.empty() && segments_.back().first_lsn == first_lsn) {
    segments_.back().bytes = 0;  // recovered empty segment, resumed
    segments_.back().records = 0;
  } else {
    segments_.push_back(Segment{path, first_lsn, 0, 0});
  }
  fsync_dir(dir_);
  return Status::ok_status();
}

Status DurableStore::fsync_active_locked() {
  if (fault::triggered("storage.fsync")) {
    return Error{"fsync failed (injected fault)", segments_.back().path};
  }
  const auto t0 = std::chrono::steady_clock::now();
  if (::fsync(fd_) != 0) return errno_error("fsync failed", segments_.back().path);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ++fsyncs_;
  fsync_us_total_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  last_fsync_ = std::chrono::steady_clock::now();
  return Status::ok_status();
}

Status DurableStore::rotate_if_needed_locked(std::unique_lock<std::mutex>& lock) {
  if (segments_.back().bytes + pending_bytes_ < options_.segment_bytes) {
    return Status::ok_status();
  }
  // Seal the full segment before the new one exists: an acknowledged
  // record must never be less durable after rotation than before. The
  // sealing fsync also resolves any pending group commit on this segment.
  Status sealed = sync_pending_locked(lock);
  if (!sealed.ok()) return sealed;
  if (segments_.back().bytes < options_.segment_bytes) {
    return Status::ok_status();  // another appender rotated while we waited
  }
  const int old_fd = fd_;
  fd_ = -1;
  ::close(old_fd);
  Status opened = open_active_segment_locked();
  if (!opened.ok()) {
    broken_ = true;  // no writable segment; appends must stop
    return opened;
  }
  return Status::ok_status();
}

Status DurableStore::sync_pending_locked(std::unique_lock<std::mutex>& lock) {
  // The inline (lock-held) covering fsync: rotation, sync(), and shutdown
  // prefer a fully resolved segment over write/fsync overlap.
  sync_cv_.wait(lock, [this] { return !sync_in_flight_; });
  Status synced = fsync_active_locked();
  if (!synced.ok()) {
    fail_pending_locked();
    sync_cv_.notify_all();
    return synced;
  }
  synced_seq_ = write_seq_;
  ack_pending_locked();
  sync_cv_.notify_all();
  return Status::ok_status();
}

void DurableStore::ack_pending_locked() {
  Segment& active = segments_.back();
  active.bytes += pending_bytes_;
  active.records += pending_records_;
  appended_bytes_ += pending_bytes_;
  pending_bytes_ = 0;
  pending_records_ = 0;
}

void DurableStore::fail_pending_locked() {
  // A covering fsync failed: nothing written since the last acknowledged
  // byte is durable, so every pending append fails together. Tickets stay
  // monotonic; the LSNs roll back with the truncated frames.
  failed_upto_ = write_seq_;
  last_lsn_ -= pending_records_;
  pending_bytes_ = 0;
  pending_records_ = 0;
  repair_tail_locked(segments_.back().bytes);
}

void DurableStore::repair_tail_locked(std::uint64_t keep_bytes) {
  // Drop unacknowledged bytes so a failed append can never be replayed.
  // O_APPEND makes the next write land at the truncated end.
  if (::ftruncate(fd_, static_cast<off_t>(keep_bytes)) != 0) {
    broken_ = true;
  }
}

Expected<Lsn> DurableStore::append(const Record& record) {
  bool compact_now = false;
  bool notify_compactor = false;
  Lsn lsn = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (broken_) return Error{"wal is broken (previous tail repair failed)", dir_};
    Status rotated = rotate_if_needed_locked(lock);
    if (!rotated.ok()) return rotated.error();

    std::vector<std::uint8_t> frame;
    append_frame(frame, record);

    // Frames land after every complete frame already written — including
    // pending ones awaiting their covering fsync.
    const std::uint64_t written_end = segments_.back().bytes + pending_bytes_;
    if (fault::triggered("storage.write")) {
      // Simulate a crash mid-write: leave a genuinely torn half-frame,
      // then repair back to the last complete frame.
      const std::size_t half = frame.size() / 2;
      std::size_t done = 0;
      while (done < half) {
        const ssize_t n = ::write(fd_, frame.data() + done, half - done);
        if (n <= 0) break;
        done += static_cast<std::size_t>(n);
      }
      repair_tail_locked(written_end);
      return Error{"wal: write failed (injected fault)", segments_.back().path};
    }
    std::size_t done = 0;
    while (done < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Error e = errno_error("wal: write failed", segments_.back().path);
        repair_tail_locked(written_end);
        return e;
      }
      done += static_cast<std::size_t>(n);
    }

    if (options_.fsync_policy == FsyncPolicy::kEveryWrite) {
      // Group commit. The frame is written and has the next LSN (writes
      // are serialized under mutex_, so LSNs are dense and in log order),
      // but acknowledgment waits for a covering fsync. The first waiter
      // with no sync in flight leads: it drops the lock, issues one fsync
      // for everything written so far, and resolves all covered tickets.
      lsn = ++last_lsn_;
      pending_bytes_ += frame.size();
      ++pending_records_;
      const std::uint64_t ticket = ++write_seq_;
      while (synced_seq_ < ticket && failed_upto_ < ticket) {
        if (sync_in_flight_) {
          sync_cv_.wait(lock);
          continue;
        }
        sync_in_flight_ = true;
        const std::uint64_t covering_seq = write_seq_;
        const std::uint64_t covering_bytes = pending_bytes_;
        const std::uint64_t covering_records = pending_records_;
        const int fd = fd_;
        const std::string path = segments_.back().path;
        const bool faulted = fault::triggered("storage.fsync");
        lock.unlock();
        Status synced = Status::ok_status();
        std::uint64_t elapsed_us = 0;
        if (faulted) {
          synced = Error{"fsync failed (injected fault)", path};
        } else {
          const auto t0 = std::chrono::steady_clock::now();
          if (::fsync(fd) != 0) synced = errno_error("fsync failed", path);
          elapsed_us = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
        }
        lock.lock();
        sync_in_flight_ = false;
        if (synced.ok()) {
          // Credit exactly the covered prefix; frames written while the
          // fsync ran stay pending for the next leader.
          synced_seq_ = covering_seq;
          Segment& active = segments_.back();
          active.bytes += covering_bytes;
          active.records += covering_records;
          appended_bytes_ += covering_bytes;
          pending_bytes_ -= covering_bytes;
          pending_records_ -= covering_records;
          ++fsyncs_;
          fsync_us_total_ += elapsed_us;
          last_fsync_ = std::chrono::steady_clock::now();
        } else {
          fail_pending_locked();
        }
        sync_cv_.notify_all();
      }
      if (synced_seq_ < ticket) {
        return Error{"wal: fsync failed (group commit)", segments_.back().path};
      }
    } else {
      // kInterval / kNone acknowledge at write; fsync happens on schedule.
      const bool sync_now =
          options_.fsync_policy == FsyncPolicy::kInterval &&
          std::chrono::steady_clock::now() - last_fsync_ >= options_.fsync_interval;
      if (sync_now) {
        Status synced = fsync_active_locked();
        if (!synced.ok()) {
          repair_tail_locked(segments_.back().bytes);
          return Error{"wal: " + synced.error().message, synced.error().where};
        }
      }
      lsn = ++last_lsn_;
      Segment& active = segments_.back();
      active.bytes += frame.size();
      ++active.records;
      appended_bytes_ += frame.size();
    }

    ++appends_;
    ++records_since_compaction_;
    if (options_.compact_every > 0 &&
        records_since_compaction_ >= options_.compact_every) {
      if (compaction_thread_.joinable()) {
        compaction_due_ = true;
        notify_compactor = true;
      } else {
        compact_now = true;
      }
    }
  }
  if (compact_now) {
    (void)compact();  // synchronous mode: best-effort, log keeps the data
  } else if (notify_compactor) {
    compaction_cv_.notify_all();
  }
  return lsn;
}

Status DurableStore::sync() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (fd_ < 0) return Error{"wal is closed", dir_};
  return sync_pending_locked(lock);
}

Status DurableStore::compact() {
  const std::lock_guard<std::mutex> serialize(compact_mutex_);
  return compact_impl();
}

Status DurableStore::compact_impl() {
  // Freeze the replay horizon under the metadata lock; the file reads and
  // the snapshot write then run without blocking appenders.
  Lsn target = 0;
  Lsn base = 0;
  std::vector<Segment> frozen;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Compact only up to the *acknowledged* tail: pending frames (written
    // but not yet covered by a group fsync) are excluded from the frozen
    // Segment::bytes, so a snapshot must not claim their LSNs either.
    const Lsn acked = last_lsn_ - static_cast<Lsn>(pending_records_);
    if (acked == snapshot_lsn_) return Status::ok_status();  // nothing new
    target = acked;
    base = snapshot_lsn_;
    frozen = segments_;
  }

  std::map<std::string, std::string> documents;
  if (base > 0) {
    const std::string path = snapshot_path(dir_, base);
    Expected<std::vector<std::uint8_t>> bytes = io::read_file(path);
    if (!bytes.ok()) return bytes.error();
    Expected<DecodedSnapshot> snapshot = decode_snapshot(bytes.value(), path);
    if (!snapshot.ok()) return snapshot.error();
    documents = std::move(snapshot.value().documents);
  }
  for (const Segment& segment : frozen) {
    if (segment.records == 0) continue;
    Expected<std::vector<std::uint8_t>> bytes = io::read_file(segment.path);
    if (!bytes.ok()) return bytes.error();
    // Segments are append-only: clamp to the frozen byte count so records
    // acknowledged after the freeze don't leak into this snapshot.
    const std::span<const std::uint8_t> view(
        bytes.value().data(),
        std::min<std::size_t>(bytes.value().size(),
                              static_cast<std::size_t>(segment.bytes)));
    std::size_t offset = 0;
    Lsn lsn = segment.first_lsn;
    for (std::uint64_t i = 0; i < segment.records; ++i, ++lsn) {
      DecodeResult frame = decode_frame(view, offset);
      if (frame.status != DecodeStatus::kOk) {
        return Error{"wal compaction replay hit an invalid frame", segment.path};
      }
      if (lsn > base && lsn <= target) apply_record(documents, frame.record);
      offset = frame.next_offset;
    }
  }

  Status written = write_snapshot(dir_, documents, target);
  if (!written.ok()) return written;

  const std::lock_guard<std::mutex> lock(mutex_);
  snapshot_lsn_ = target;
  records_since_compaction_ = last_lsn_ - pending_records_ - target;
  ++compactions_;
  last_compaction_ = std::chrono::steady_clock::now();
  compacted_once_ = true;
  std::error_code ec;
  // Older snapshots are strictly dominated; sealed segments whose every
  // record is <= target are covered. The active segment is never deleted.
  const DirListing listing = list_store(dir_);
  for (const auto& [snap_lsn, path] : listing.snapshots) {
    if (snap_lsn < target) fs::remove(path, ec);
  }
  for (std::size_t i = 0; i + 1 < segments_.size();) {
    const Segment& segment = segments_[i];
    if (segment.first_lsn + segment.records <= target + 1) {
      fs::remove(segment.path, ec);
      segments_.erase(segments_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return Status::ok_status();
}

void DurableStore::compaction_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      compaction_cv_.wait(lock, [this] { return stop_ || compaction_due_; });
      if (stop_) return;
      compaction_due_ = false;
    }
    const std::lock_guard<std::mutex> serialize(compact_mutex_);
    (void)compact_impl();  // failure keeps the log authoritative; retried
                           // the next time the record budget fills
  }
}

Stats DurableStore::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  // Report the acknowledged tail; pending (unfsynced) LSNs may yet fail.
  stats.last_lsn = last_lsn_ - pending_records_;
  stats.snapshot_lsn = snapshot_lsn_;
  stats.segment_count = segments_.size();
  stats.records_since_compaction = records_since_compaction_;
  stats.compactions = compactions_;
  if (compacted_once_) {
    stats.seconds_since_compaction =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      last_compaction_)
            .count();
  }
  stats.fsyncs = fsyncs_;
  stats.fsync_us_total = fsync_us_total_;
  stats.appended_bytes = appended_bytes_;
  stats.appends = appends_;
  return stats;
}

}  // namespace provml::wal
