#include "provml/workflow/workflow.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "provml/common/strings.hpp"
#include "provml/sysmon/sampler.hpp"  // now_ms

namespace provml::workflow {

const TaskResult* WorkflowResult::task(const std::string& name) const {
  for (const TaskResult& t : tasks) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Status Workflow::add_task(TaskSpec task) {
  if (task.name.empty()) return Error{"task name must not be empty", name_};
  for (const TaskSpec& existing : tasks_) {
    if (existing.name == task.name) {
      return Error{"duplicate task name '" + task.name + "'", name_};
    }
  }
  if (!task.body) return Error{"task '" + task.name + "' has no body", name_};
  tasks_.push_back(std::move(task));
  return Status::ok_status();
}

std::vector<std::string> Workflow::validate(
    const std::set<std::string>& workflow_inputs) const {
  std::vector<std::string> problems;
  std::set<std::string> names;
  std::set<std::string> produced(workflow_inputs.begin(), workflow_inputs.end());
  for (const TaskSpec& task : tasks_) names.insert(task.name);
  for (const TaskSpec& task : tasks_) {
    for (const std::string& dep : task.after) {
      if (names.count(dep) == 0) {
        problems.push_back("task '" + task.name + "' depends on unknown task '" + dep +
                           "'");
      }
    }
    for (const std::string& out : task.produces) produced.insert(out);
  }
  for (const TaskSpec& task : tasks_) {
    for (const std::string& in : task.consumes) {
      if (produced.count(in) == 0) {
        problems.push_back("task '" + task.name + "' consumes '" + in +
                           "' which nothing produces");
      }
    }
  }
  if (!topological_order().ok()) {
    problems.push_back("dependency graph contains a cycle");
  }
  return problems;
}

Expected<std::vector<std::string>> Workflow::topological_order() const {
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> downstream;
  for (const TaskSpec& task : tasks_) in_degree[task.name] = 0;
  for (const TaskSpec& task : tasks_) {
    for (const std::string& dep : task.after) {
      if (in_degree.count(dep) == 0) {
        return Error{"unknown dependency '" + dep + "'", name_};
      }
      downstream[dep].push_back(task.name);
      ++in_degree[task.name];
    }
  }
  std::deque<std::string> ready;
  for (const TaskSpec& task : tasks_) {  // insertion order for determinism
    if (in_degree[task.name] == 0) ready.push_back(task.name);
  }
  std::vector<std::string> order;
  while (!ready.empty()) {
    const std::string current = ready.front();
    ready.pop_front();
    order.push_back(current);
    for (const std::string& next : downstream[current]) {
      if (--in_degree[next] == 0) ready.push_back(next);
    }
  }
  if (order.size() != tasks_.size()) return Error{"cycle detected", name_};
  return order;
}

namespace {

/// Builds the run's PROV document from the execution record.
prov::Document build_provenance(const Workflow& workflow, const RunOptions& options,
                                const std::vector<TaskResult>& results,
                                const std::vector<TaskSpec>& tasks,
                                const std::map<std::string, json::Value>& data) {
  prov::Document doc;
  doc.declare_namespace("wf", "urn:provml:workflow:" + workflow.name() + "/");
  const std::string agent_id = "wf:" + options.agent;
  const std::string run_id = "wf:run";
  doc.add_agent(agent_id, {{"prov:type", "prov:SoftwareAgent"}});
  doc.add_activity(run_id, {{"prov:type", "provml:WorkflowRun"},
                            {"provml:workflow", workflow.name()}});
  doc.was_associated_with(run_id, agent_id);

  // Workflow inputs are pre-existing entities used by the run.
  for (const auto& [name, value] : options.inputs) {
    const std::string id = "wf:data/" + name;
    doc.add_entity(id, {{"prov:type", "provml:WorkflowData"},
                        {"provml:value", prov::AttributeValue{value}}});
    doc.used(run_id, id);
  }

  std::map<std::string, std::string> producer_of;  // data name → task activity id
  for (const TaskSpec& task : tasks) {
    for (const std::string& out : task.produces) {
      producer_of[out] = "wf:task/" + task.name;
    }
  }

  for (const TaskResult& result : results) {
    const TaskSpec* spec = nullptr;
    for (const TaskSpec& task : tasks) {
      if (task.name == result.name) spec = &task;
    }
    if (spec == nullptr) continue;
    const std::string task_id = "wf:task/" + result.name;
    doc.add_activity(task_id,
                     {{"prov:type", "provml:Task"},
                      {"provml:status", result.succeeded ? "succeeded"
                                        : result.executed ? "failed"
                                                          : "skipped"}},
                     result.executed ? strings::iso8601_utc(result.start_ms) : "",
                     result.executed ? strings::iso8601_utc(result.end_ms) : "");
    doc.was_informed_by(task_id, run_id);
    if (!result.executed) continue;

    for (const std::string& in : spec->consumes) {
      const std::string data_id = "wf:data/" + in;
      if (doc.find_element(data_id) == nullptr) {
        doc.add_entity(data_id, {{"prov:type", "provml:WorkflowData"}});
      }
      doc.used(task_id, data_id, strings::iso8601_utc(result.start_ms));
    }
    if (result.succeeded) {
      for (const std::string& out : spec->produces) {
        const std::string data_id = "wf:data/" + out;
        prov::Attributes attrs{{"prov:type", "provml:WorkflowData"}};
        const auto it = data.find(out);
        if (it != data.end()) {
          attrs.emplace_back("provml:value", prov::AttributeValue{it->second});
        }
        doc.add_entity(data_id, std::move(attrs));
        doc.was_generated_by(data_id, task_id, strings::iso8601_utc(result.end_ms));
        // Outputs derive from the task's inputs.
        for (const std::string& in : spec->consumes) {
          doc.was_derived_from(data_id, "wf:data/" + in);
        }
      }
    }
  }
  return doc;
}

}  // namespace

Expected<WorkflowResult> run_workflow(const Workflow& workflow, const RunOptions& options) {
  std::set<std::string> input_names;
  for (const auto& [name, value] : options.inputs) input_names.insert(name);
  const std::vector<std::string> problems = workflow.validate(input_names);
  if (!problems.empty()) return Error{problems.front(), workflow.name()};

  // Execution state under one mutex: the data space, per-task status, and
  // the ready queue. Workers pull ready tasks; finishing a task may ready
  // its dependents.
  struct TaskState {
    const TaskSpec* spec = nullptr;
    std::size_t remaining_deps = 0;
    std::vector<std::string> dependents;
    TaskResult result;
  };

  std::map<std::string, TaskState> states;
  for (const TaskSpec& task : workflow.tasks()) {
    TaskState state;
    state.spec = &task;
    state.remaining_deps = task.after.size();
    state.result.name = task.name;
    states.emplace(task.name, std::move(state));
  }
  for (const TaskSpec& task : workflow.tasks()) {
    for (const std::string& dep : task.after) {
      states.at(dep).dependents.push_back(task.name);
    }
  }

  std::map<std::string, json::Value> data = options.inputs;
  std::vector<TaskResult> completed;
  std::deque<std::string> ready;
  for (const TaskSpec& task : workflow.tasks()) {
    if (task.after.empty()) ready.push_back(task.name);
  }

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t running = 0;
  bool failed = false;

  const unsigned workers = std::max(1u, options.workers);
  std::vector<std::thread> pool;
  pool.reserve(workers);

  auto worker_loop = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      cv.wait(lock, [&] {
        return !ready.empty() || (running == 0 && (ready.empty() || failed));
      });
      if (ready.empty() || failed) {
        if (running == 0) {
          cv.notify_all();
          return;
        }
        continue;
      }
      const std::string name = ready.front();
      ready.pop_front();
      TaskState& state = states.at(name);
      state.result.executed = true;
      state.result.start_ms = sysmon::now_ms();
      ++running;

      // Run the body outside the lock on a private context copy of the
      // data pointer (TaskContext serializes through the shared map, so
      // reads/writes still need the lock: give the body a local snapshot).
      std::map<std::string, json::Value> local = data;
      lock.unlock();
      TaskContext ctx(&local);
      Status status = Status::ok_status();
      try {
        status = state.spec->body(ctx);
      } catch (const std::exception& e) {
        status = Error{std::string("task threw: ") + e.what(), name};
      }
      lock.lock();

      state.result.end_ms = sysmon::now_ms();
      --running;
      if (status.ok()) {
        state.result.succeeded = true;
        // Merge only the declared outputs back into the shared space.
        for (const std::string& out : state.spec->produces) {
          const auto it = local.find(out);
          if (it != local.end()) data[out] = it->second;
        }
        for (const std::string& dependent : state.result.succeeded
                 ? state.dependents
                 : std::vector<std::string>{}) {
          if (--states.at(dependent).remaining_deps == 0 && !failed) {
            ready.push_back(dependent);
          }
        }
      } else {
        state.result.error = status.error().to_string();
        failed = true;
      }
      completed.push_back(state.result);
      cv.notify_all();
      if (ready.empty() && running == 0) {
        cv.notify_all();
        return;
      }
    }
  };

  for (unsigned i = 0; i < workers; ++i) pool.emplace_back(worker_loop);
  for (std::thread& t : pool) t.join();

  WorkflowResult result;
  // completed holds executed tasks in finish order; append skipped ones.
  result.tasks = completed;
  for (const TaskSpec& task : workflow.tasks()) {
    if (result.task(task.name) == nullptr) {
      result.tasks.push_back(states.at(task.name).result);
    }
  }
  result.succeeded = !failed && completed.size() == workflow.tasks().size() &&
                     std::all_of(completed.begin(), completed.end(),
                                 [](const TaskResult& t) { return t.succeeded; });
  result.data = std::move(data);
  result.provenance =
      build_provenance(workflow, options, result.tasks, workflow.tasks(), result.data);
  return result;
}

}  // namespace provml::workflow
