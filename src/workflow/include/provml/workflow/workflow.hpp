// yProv4WFs counterpart: provenance-tracked workflow execution. The paper
// places yProv4ML next to "its workflow counterpart yProv4WFs" (both
// provenance *producers*) and cites Sacco et al., "Enabling provenance
// tracking in workflow management systems" — this module is that substrate:
// a DAG of tasks executed (optionally in parallel) with automatic W3C PROV
// capture: every task becomes an activity, every declared input/output a
// data entity, inter-task data dependencies become used/wasGeneratedBy/
// wasDerivedFrom relations, and the whole run a PROV document ready for the
// yProv service.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "provml/common/expected.hpp"
#include "provml/json/value.hpp"
#include "provml/prov/model.hpp"

namespace provml::workflow {

/// Runtime context handed to a task body: read upstream outputs, publish
/// this task's outputs.
class TaskContext {
 public:
  explicit TaskContext(std::map<std::string, json::Value>* data) : data_(data) {}

  /// The value published under `name` by an upstream task (null if absent).
  [[nodiscard]] json::Value input(const std::string& name) const {
    const auto it = data_->find(name);
    return it == data_->end() ? json::Value(nullptr) : it->second;
  }

  /// Publishes an output value for downstream tasks.
  void output(const std::string& name, json::Value value) {
    (*data_)[name] = std::move(value);
  }

 private:
  std::map<std::string, json::Value>* data_;
};

/// A task body: returns a Status; failures abort the workflow run.
using TaskBody = std::function<Status(TaskContext&)>;

/// Declarative task description.
struct TaskSpec {
  std::string name;
  std::vector<std::string> after;    ///< task names this one depends on
  std::vector<std::string> consumes; ///< data names read via ctx.input()
  std::vector<std::string> produces; ///< data names written via ctx.output()
  TaskBody body;
};

/// Builds and runs a workflow.
class Workflow {
 public:
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  /// Adds a task; names must be unique.
  [[nodiscard]] Status add_task(TaskSpec task);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }

  /// Validates the DAG: dependencies exist, no cycles, every consumed data
  /// name is produced by some (not necessarily upstream-declared) task or
  /// provided as a workflow input.
  [[nodiscard]] std::vector<std::string> validate(
      const std::set<std::string>& workflow_inputs = {}) const;

  /// Topological order (dependency-respecting); error when cyclic.
  [[nodiscard]] Expected<std::vector<std::string>> topological_order() const;

  [[nodiscard]] const std::vector<TaskSpec>& tasks() const { return tasks_; }

 private:
  std::string name_;
  std::vector<TaskSpec> tasks_;
};

/// Per-task outcome of a run.
struct TaskResult {
  std::string name;
  bool executed = false;
  bool succeeded = false;
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0;
  std::string error;
};

struct WorkflowResult {
  bool succeeded = false;
  std::vector<TaskResult> tasks;                 ///< in execution order
  std::map<std::string, json::Value> data;       ///< final data space
  prov::Document provenance;                     ///< captured PROV document

  [[nodiscard]] const TaskResult* task(const std::string& name) const;
};

struct RunOptions {
  std::map<std::string, json::Value> inputs;  ///< initial data space
  unsigned workers = 1;  ///< >1 executes independent tasks concurrently
  std::string agent = "workflow-engine";
};

/// Executes `workflow`, capturing provenance. Tasks run as soon as their
/// dependencies finish; a task failure stops scheduling new tasks (running
/// ones drain) and the result reports which tasks never executed.
[[nodiscard]] Expected<WorkflowResult> run_workflow(const Workflow& workflow,
                                                    const RunOptions& options = {});

}  // namespace provml::workflow
