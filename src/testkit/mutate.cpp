#include "provml/testkit/mutate.hpp"

#include <algorithm>

namespace provml::testkit {
namespace {

using Bytes = std::vector<std::uint8_t>;

void apply_one(Rng& rng, Bytes& data, const MutateOptions& opts) {
  if (data.empty()) {
    const std::size_t n = 1 + rng.below(8);
    for (std::size_t i = 0; i < n; ++i) data.push_back(rng.byte());
    return;
  }
  const std::size_t pos = rng.below(data.size());
  switch (rng.below(opts.allow_growth ? 8 : 5)) {
    case 0:  // bitflip
      data[pos] ^= static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 1:  // random byte set
      data[pos] = rng.byte();
      break;
    case 2: {  // magic values that stress length fields and framing
      data[pos] = rng.pick<std::uint8_t>({0x00, 0x01, 0x7F, 0x80, 0xFE, 0xFF});
      break;
    }
    case 3: {  // erase a short range
      const std::size_t len = std::min(data.size() - pos, rng.below(8) + 1);
      data.erase(data.begin() + static_cast<std::ptrdiff_t>(pos),
                 data.begin() + static_cast<std::ptrdiff_t>(pos + len));
      break;
    }
    case 4:  // truncate at pos
      data.resize(pos);
      break;
    case 5: {  // splice: copy a random range over another position
      const std::size_t src = rng.below(data.size());
      const std::size_t len = std::min(data.size() - src, rng.below(16) + 1);
      Bytes chunk(data.begin() + static_cast<std::ptrdiff_t>(src),
                  data.begin() + static_cast<std::ptrdiff_t>(src + len));
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), chunk.begin(),
                  chunk.end());
      break;
    }
    case 6: {  // repeat: duplicate the byte at pos several times
      const std::size_t n = rng.below(16) + 1;
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), n, data[pos]);
      break;
    }
    default: {  // insert random noise
      const std::size_t n = rng.below(8) + 1;
      Bytes noise(n);
      for (std::uint8_t& b : noise) b = rng.byte();
      data.insert(data.begin() + static_cast<std::ptrdiff_t>(pos), noise.begin(),
                  noise.end());
      break;
    }
  }
}

}  // namespace

Bytes mutate(Rng& rng, const Bytes& input, const MutateOptions& opts) {
  Bytes out = input;
  const int n = opts.min_mutations +
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(opts.max_mutations - opts.min_mutations) + 1));
  for (int i = 0; i < n; ++i) apply_one(rng, out, opts);
  // A chain of erase/truncate ops can empty the buffer; an empty mutant
  // exercises nothing, so grow one back (apply_one on empty always grows).
  if (out.empty()) apply_one(rng, out, opts);
  return out;
}

std::string mutate(Rng& rng, std::string_view input, const MutateOptions& opts) {
  Bytes bytes(input.begin(), input.end());
  const Bytes out = mutate(rng, bytes, opts);
  return std::string(out.begin(), out.end());
}

Bytes truncate(Rng& rng, const Bytes& input) {
  if (input.empty()) return {};
  return Bytes(input.begin(),
               input.begin() + static_cast<std::ptrdiff_t>(rng.below(input.size())));
}

std::string truncate(Rng& rng, std::string_view input) {
  if (input.empty()) return {};
  return std::string(input.substr(0, rng.below(input.size())));
}

}  // namespace provml::testkit
