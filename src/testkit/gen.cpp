#include "provml/testkit/gen.hpp"

#include <algorithm>
#include <cmath>

namespace provml::testkit {
namespace {

constexpr const char* kIdentFirst = "abcdefghijklmnopqrstuvwxyz";
constexpr const char* kIdentRest = "abcdefghijklmnopqrstuvwxyz0123456789_";

void append_random_char(Rng& rng, std::string& out) {
  switch (rng.below(8)) {
    case 0:  // escape-worthy ASCII
      out.push_back(rng.pick<char>({'"', '\\', '\n', '\t', '\r', '\b', '\f', '/'}));
      break;
    case 1: {  // 2-byte UTF-8 (U+0080..U+07FF)
      const std::uint32_t cp = 0x80 + static_cast<std::uint32_t>(rng.below(0x800 - 0x80));
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      break;
    }
    case 2: {  // 3-byte UTF-8, skipping the surrogate block
      std::uint32_t cp = 0x800 + static_cast<std::uint32_t>(rng.below(0xD800 - 0x800));
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      break;
    }
    default:  // printable ASCII
      out.push_back(static_cast<char>(' ' + rng.below('~' - ' ' + 1)));
      break;
  }
}

/// Finite double spanning many magnitudes, including exact integers,
/// denormal-scale values, and negative zero.
double gen_double(Rng& rng) {
  switch (rng.below(6)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return static_cast<double>(rng.range(-1000, 1000));
    case 3: return rng.unit();
    case 4: return (rng.unit() - 0.5) * std::pow(10.0, static_cast<double>(rng.range(-300, 300)));
    default: return (rng.unit() - 0.5) * 1e6;
  }
}

}  // namespace

std::string gen_string(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len + 1);
  std::string out;
  out.reserve(len * 3);
  for (std::size_t i = 0; i < len; ++i) append_random_char(rng, out);
  return out;
}

std::string gen_ident(Rng& rng, std::size_t max_len) {
  std::string out;
  out.push_back(kIdentFirst[rng.below(26)]);
  const std::size_t extra = rng.below(max_len);
  for (std::size_t i = 0; i < extra; ++i) out.push_back(kIdentRest[rng.below(37)]);
  return out;
}

std::vector<std::uint8_t> gen_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len + 1);
  std::vector<std::uint8_t> out;
  out.reserve(len);
  while (out.size() < len) {
    switch (rng.below(4)) {
      case 0: {  // uniform noise
        const std::size_t n = std::min(len - out.size(), rng.below(64) + 1);
        for (std::size_t i = 0; i < n; ++i) out.push_back(rng.byte());
        break;
      }
      case 1: {  // a run (RLE-friendly)
        const std::size_t n = std::min(len - out.size(), rng.below(200) + 1);
        out.insert(out.end(), n, rng.byte());
        break;
      }
      case 2: {  // stepped little-endian counters (delta-friendly)
        std::uint64_t v = rng.next();
        const std::uint64_t step = rng.below(16);
        while (out.size() + 8 <= len && rng.below(40) != 0) {
          for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(v >> (8 * b)));
          v += step;
        }
        if (out.size() + 8 > len) out.resize(len);
        break;
      }
      default: {  // doubles (shuffle-friendly)
        double d = gen_double(rng);
        while (out.size() + 8 <= len && rng.below(30) != 0) {
          std::uint64_t bits;
          static_assert(sizeof bits == sizeof d);
          __builtin_memcpy(&bits, &d, 8);
          for (int b = 0; b < 8; ++b) out.push_back(static_cast<std::uint8_t>(bits >> (8 * b)));
          d += 0.125;
        }
        if (out.size() + 8 > len) out.resize(len);
        break;
      }
    }
  }
  return out;
}

json::Value gen_json(Rng& rng, int max_depth) {
  const bool leaf = max_depth <= 0 || rng.chance(0.4);
  if (leaf) {
    switch (rng.below(5)) {
      case 0: return json::Value(nullptr);
      case 1: return json::Value(rng.chance(0.5));
      case 2: return json::Value(static_cast<std::int64_t>(rng.next()));
      case 3: return json::Value(gen_double(rng));
      default: return json::Value(gen_string(rng));
    }
  }
  if (rng.chance(0.5)) {
    json::Array arr;
    const std::size_t n = rng.below(5);
    for (std::size_t i = 0; i < n; ++i) arr.push_back(gen_json(rng, max_depth - 1));
    return json::Value(std::move(arr));
  }
  json::Object obj;
  const std::size_t n = rng.below(5);
  for (std::size_t i = 0; i < n; ++i) {
    obj.set(gen_string(rng, 8), gen_json(rng, max_depth - 1));
  }
  return json::Value(std::move(obj));
}

prov::Document gen_prov_document(Rng& rng, const ProvGenOptions& opts) {
  prov::Document doc;
  // A fixed prefix pool with stable IRIs: generated documents then share
  // namespaces, so merge() of two generated documents cannot conflict.
  const std::vector<std::string> prefixes = {"ex", "run", "ml"};
  for (const std::string& p : prefixes) {
    doc.declare_namespace(p, "http://example.org/" + p + "#");
  }
  auto qualified = [&](const std::string& local) {
    return rng.pick(prefixes) + ":" + local;
  };

  auto gen_attrs = [&]() {
    prov::Attributes attrs;
    const std::size_t n = rng.below(4);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string key = qualified(gen_ident(rng));
      switch (rng.below(4)) {
        case 0: attrs.emplace_back(key, prov::AttributeValue(gen_string(rng)));
          break;
        case 1: attrs.emplace_back(key, prov::AttributeValue(rng.range(-1000000, 1000000)));
          break;
        case 2: attrs.emplace_back(key, prov::AttributeValue(gen_double(rng)));
          break;
        default:
          if (opts.with_typed_literals) {
            attrs.emplace_back(key, prov::AttributeValue(json::Value(gen_string(rng)),
                                                         "xsd:" + gen_ident(rng, 6)));
          } else {
            attrs.emplace_back(key, prov::AttributeValue(rng.chance(0.5)));
          }
          break;
      }
    }
    return attrs;
  };

  std::vector<std::string> pool[3];  // entity / activity / agent ids
  const std::size_t elements = 1 + rng.below(opts.max_elements);
  for (std::size_t i = 0; i < elements; ++i) {
    const std::string id = qualified(gen_ident(rng) + "_" + std::to_string(i));
    switch (rng.below(3)) {
      case 0:
        doc.add_entity(id, gen_attrs());
        pool[0].push_back(id);
        break;
      case 1: {
        const std::string start = rng.chance(0.5) ? "2025-01-01T00:00:00" : "";
        const std::string end = rng.chance(0.5) ? "2025-01-01T01:00:00" : "";
        doc.add_activity(id, gen_attrs(), start, end);
        pool[1].push_back(id);
        break;
      }
      default:
        doc.add_agent(id, gen_attrs());
        pool[2].push_back(id);
        break;
    }
  }

  const std::size_t relations = rng.below(opts.max_relations + 1);
  for (std::size_t i = 0; i < relations; ++i) {
    const auto kind = static_cast<prov::RelationKind>(rng.below(prov::kRelationKindCount));
    const prov::RelationSpec& spec = prov::relation_spec(kind);
    const auto& subjects = pool[static_cast<int>(spec.subject_kind)];
    const auto& objects = pool[static_cast<int>(spec.object_kind)];
    if (subjects.empty() || objects.empty()) continue;
    const std::string time =
        spec.has_time && rng.chance(0.3) ? "2025-01-01T00:30:00" : "";
    doc.add_relation(kind, rng.pick(subjects), rng.pick(objects), time, gen_attrs());
  }

  if (opts.with_bundles && rng.chance(0.3)) {
    ProvGenOptions inner = opts;
    inner.with_bundles = false;  // one level of nesting, like real documents
    inner.max_elements = 4;
    inner.max_relations = 4;
    prov::Document& bundle = doc.bundle(qualified("bundle_" + gen_ident(rng, 4)));
    bundle = gen_prov_document(rng, inner);
  }
  return doc;
}

// ----------------------------------------------------------- mutation streams

std::vector<MutationOp> gen_mutation_stream(Rng& rng, const MutationStreamOptions& opts) {
  std::vector<std::string> names;
  const std::size_t pool = std::max<std::size_t>(1, opts.name_pool);
  for (std::size_t i = 0; i < pool; ++i) {
    names.push_back("doc_" + gen_ident(rng, 6) + "_" + std::to_string(i));
  }
  std::vector<MutationOp> ops;
  const std::size_t count = 1 + rng.below(std::max<std::size_t>(1, opts.max_ops));
  for (std::size_t i = 0; i < count; ++i) {
    MutationOp op;
    op.name = rng.pick(names);
    if (rng.chance(opts.delete_ratio)) {
      op.kind = MutationOp::Kind::kDelete;  // may hit a name not live: no-op
    } else {
      op.kind = MutationOp::Kind::kPut;
      op.doc = gen_prov_document(rng, opts.doc_options);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

// ---------------------------------------------------------------------- graph

namespace {

// Shared vocabulary for graph + query generation: small pools so random
// patterns collide with random graphs often enough to produce rows.
const std::vector<std::string> kGraphLabels = {"Entity", "Activity", "Agent", "Run",
                                               "Prov"};
const std::vector<std::string> kGraphEdgeTypes = {"used", "wasGeneratedBy",
                                                  "wasAssociatedWith", "follows"};
const std::vector<std::string> kGraphPropKeys = {"name", "rank", "score", "flag"};
const std::vector<std::string> kGraphNames = {"alpha", "beta", "gamma", "delta"};
const std::vector<std::string> kGraphScores = {"0.5", "1.5", "2.25"};

/// Property value typed by key, mirroring graph_literal() below so inline
/// constraints and WHERE literals can hit stored values exactly.
json::Value gen_graph_prop_value(Rng& rng, const std::string& key) {
  if (key == "name") return json::Value(rng.pick(kGraphNames));
  if (key == "rank") return json::Value(static_cast<std::int64_t>(rng.below(6)));
  if (key == "score") return json::Value(0.25 + 0.25 * static_cast<double>(rng.below(10)));
  return json::Value(rng.chance(0.5));
}

/// The same value space rendered as query-text literal syntax.
std::string graph_literal(Rng& rng, const std::string& key) {
  if (key == "name") return "\"" + rng.pick(kGraphNames) + "\"";
  if (key == "rank") return std::to_string(rng.below(6));
  if (key == "score") return rng.pick(kGraphScores);
  return rng.chance(0.5) ? "true" : "false";
}

}  // namespace

graphstore::PropertyGraph gen_property_graph(Rng& rng, const GraphGenOptions& opts) {
  graphstore::PropertyGraph graph;
  std::vector<graphstore::NodeId> ids;
  const std::size_t nodes = 1 + rng.below(opts.max_nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    std::set<std::string> labels;
    if (!rng.chance(0.1)) {  // ~10% unlabeled, like raw imported nodes
      labels.insert(rng.pick(kGraphLabels));
      if (rng.chance(0.25)) labels.insert(rng.pick(kGraphLabels));
    }
    const graphstore::NodeId id = graph.add_node(std::move(labels));
    const std::size_t props = rng.below(4);
    for (std::size_t p = 0; p < props; ++p) {
      const std::string& key = rng.pick(kGraphPropKeys);
      graph.set_property(id, key, gen_graph_prop_value(rng, key));
    }
    ids.push_back(id);
  }
  const std::size_t edges = rng.below(opts.max_edges + 1);
  for (std::size_t e = 0; e < edges; ++e) {
    (void)graph.add_edge(rng.pick(ids), rng.pick(ids), rng.pick(kGraphEdgeTypes));
  }
  return graph;
}

std::string gen_graph_query(Rng& rng) {
  const std::size_t n = 1 + rng.below(3);
  std::string text = "MATCH ";
  std::vector<std::string> vars;
  for (std::size_t i = 0; i < n; ++i) {
    std::string var = "v";
    var += std::to_string(i);
    vars.push_back(var);
    text += "(" + var;
    if (rng.chance(0.7)) text += ":" + rng.pick(kGraphLabels);
    if (rng.chance(0.4)) {
      const std::string& key = rng.pick(kGraphPropKeys);
      text += " {" + key + ": " + graph_literal(rng, key) + "}";
    }
    text += ")";
    if (i + 1 < n) {
      std::string type;
      if (rng.chance(0.6)) type = ":" + rng.pick(kGraphEdgeTypes);
      // ~25% of edges are variable-length, covering every written form
      // the parser accepts: *, *n, *min..max, *..max, *1.. — with the
      // open upper bound only from min 1, as the grammar requires.
      if (rng.chance(0.25)) {
        switch (rng.below(5)) {
          case 0: type += "*"; break;
          case 1: type += "*" + std::to_string(1 + rng.below(3)); break;
          case 2: {
            const std::size_t min = 1 + rng.below(2);
            type += "*" + std::to_string(min) + ".." + std::to_string(min + rng.below(3));
            break;
          }
          case 3: type += "*.." + std::to_string(1 + rng.below(3)); break;
          default: type += "*1.."; break;
        }
      }
      switch (rng.below(3)) {
        case 0: text += "-[" + type + "]->"; break;
        case 1: text += "<-[" + type + "]-"; break;
        default: text += "-[" + type + "]-"; break;
      }
    }
  }
  const std::size_t conds = rng.below(3);
  const std::vector<std::string> ops = {"=", "!=", "<", "<=", ">", ">="};
  for (std::size_t c = 0; c < conds; ++c) {
    text += c == 0 ? " WHERE " : " AND ";
    const std::string& key = rng.pick(kGraphPropKeys);
    text += rng.pick(vars) + "." + key + " " + rng.pick(ops) + " " +
            graph_literal(rng, key);
  }
  // RETURN: a subset of plain variables, optionally mixed with aggregate
  // items. Plain-returned vars double as grouping keys when aggregates are
  // present, so every combination the engine groups by gets generated.
  std::vector<std::string> plain;
  std::vector<std::string> aggregates;
  for (const std::string& var : vars) {
    if (rng.chance(0.6)) plain.push_back(var);
  }
  if (rng.chance(0.3)) {
    const std::size_t count = 1 + rng.below(2);
    for (std::size_t a = 0; a < count; ++a) {
      const std::string& var = rng.pick(vars);
      switch (rng.below(4)) {
        case 0: aggregates.push_back("count(" + var + ")"); break;
        case 1: aggregates.push_back("min(" + var + "." + rng.pick(kGraphPropKeys) + ")"); break;
        case 2: aggregates.push_back("max(" + var + "." + rng.pick(kGraphPropKeys) + ")"); break;
        default: aggregates.push_back("avg(" + var + "." + rng.pick(kGraphPropKeys) + ")"); break;
      }
    }
  }
  if (plain.empty() && aggregates.empty()) plain.push_back(vars.front());
  std::string returned;
  for (const std::string& item : plain) {
    if (!returned.empty()) returned += ", ";
    returned += item;
  }
  for (const std::string& item : aggregates) {
    if (!returned.empty()) returned += ", ";
    returned += item;
  }
  text += " RETURN " + returned;
  // ORDER BY keys must reference RETURN output: a plain returned var
  // (optionally through a property) or a returned aggregate verbatim.
  if (rng.chance(0.3)) {
    std::vector<std::string> keys;
    for (const std::string& var : plain) {
      keys.push_back(var);
      keys.push_back(var + "." + rng.pick(kGraphPropKeys));
    }
    for (const std::string& agg : aggregates) keys.push_back(agg);
    if (!keys.empty()) {
      std::string order;
      const std::size_t count = 1 + rng.below(std::min<std::size_t>(keys.size(), 2));
      for (std::size_t k = 0; k < count; ++k) {
        if (!order.empty()) order += ", ";
        order += rng.pick(keys);
        if (rng.chance(0.4)) order += rng.chance(0.5) ? " DESC" : " ASC";
      }
      text += " ORDER BY " + order;
    }
  }
  if (rng.chance(0.2)) text += " SKIP " + std::to_string(rng.below(4));
  if (rng.chance(0.3)) text += " LIMIT " + std::to_string(rng.below(6));
  return text;
}

storage::MetricSet gen_metric_set(Rng& rng, const MetricGenOptions& opts) {
  storage::MetricSet out;
  const std::vector<std::string> contexts = {"TRAINING", "VALIDATION", "TESTING"};
  const std::size_t n_series = 1 + rng.below(opts.max_series);
  for (std::size_t s = 0; s < n_series; ++s) {
    storage::MetricSeries& series =
        out.series(gen_ident(rng) + std::to_string(s), rng.pick(contexts),
                   rng.chance(0.5) ? gen_ident(rng, 3) : "");
    const std::size_t n = rng.below(opts.max_samples + 1);
    std::int64_t step = rng.range(0, 1000);
    std::int64_t ts = 1700000000000 + rng.range(0, 1000000);
    const int shape = static_cast<int>(rng.below(3));
    double level = gen_double(rng);
    for (std::size_t i = 0; i < n; ++i) {
      step += rng.range(1, 5);
      ts += rng.range(0, 2000);
      double value = 0.0;
      switch (shape) {
        case 0: value = level; break;                                  // constant
        case 1: value = level / (1.0 + static_cast<double>(i)); break;  // decay
        default: value = gen_double(rng); break;                        // noise
      }
      series.append(step, ts, value);
    }
  }
  return out;
}

net::HttpRequest gen_http_request(Rng& rng) {
  net::HttpRequest request;
  request.method =
      rng.pick<std::string>({"GET", "PUT", "POST", "DELETE", "HEAD", "PATCH"});
  std::string target = "/";
  const std::size_t segments = rng.below(4);
  for (std::size_t i = 0; i < segments; ++i) {
    target += gen_ident(rng) + (i + 1 < segments ? "/" : "");
  }
  if (rng.chance(0.3)) target += "?" + gen_ident(rng, 4) + "=" + gen_ident(rng, 4);
  request.target = target;
  request.version = "HTTP/1.1";

  const std::size_t n_headers = rng.below(5);
  for (std::size_t i = 0; i < n_headers; ++i) {
    // Unique-ified names; skip framing headers the serializer owns.
    request.headers.push_back(
        {"X-" + gen_ident(rng) + "-" + std::to_string(i), gen_ident(rng, 16)});
  }
  const bool wants_body =
      request.method == "PUT" || request.method == "POST" || rng.chance(0.2);
  if (wants_body) {
    const std::size_t len = rng.below(256);
    request.body.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      request.body.push_back(static_cast<char>(rng.byte()));
    }
  }
  return request;
}

std::string http_wire(const net::HttpRequest& request) {
  std::string wire = request.method + " " + request.target + " " + request.version + "\r\n";
  for (const net::Header& h : request.headers) {
    wire += h.name + ": " + h.value + "\r\n";
  }
  if (!request.body.empty() || request.method == "PUT" || request.method == "POST") {
    wire += "Content-Length: " + std::to_string(request.body.size()) + "\r\n";
  }
  wire += "\r\n";
  wire += request.body;
  return wire;
}

}  // namespace provml::testkit
