// Fuzz-driver harness. Each driver is a plain executable:
//
//   int main(int argc, char** argv) {
//     return testkit::fuzz_main(argc, argv, "fuzz_json", 300,
//                               [](testkit::Rng& rng) { ... FUZZ_CHECK(...) ... });
//   }
//
// The harness derives one sub-seed per iteration from the master --seed,
// runs the body, and on any failure (FUZZ_CHECK, thrown exception, or a
// typed Error the body escalates) prints BOTH the master seed and the
// exact one-iteration replay command:
//
//   FAIL fuzz_json iteration=17 iter_seed=0x9c2f...:
//     round-trip mismatch
//   reproduce: ./fuzz_json --seed 1 --begin 17 --iters 1
//
// so a CI failure is one copy-paste away from a local repro.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "provml/testkit/rng.hpp"

namespace provml::testkit {

/// Thrown by FUZZ_CHECK on a failed fuzz assertion.
class FuzzFailure : public std::runtime_error {
 public:
  explicit FuzzFailure(const std::string& message) : std::runtime_error(message) {}
};

/// Options parsed from the command line: --seed N, --iters N, --begin N.
struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iterations = 300;
  std::uint64_t begin = 0;  ///< first iteration index (for single-iter replay)
};

/// Runs `body` for `iterations` iterations with per-iteration Rngs derived
/// from the master seed. Returns the process exit code (0 = all passed).
int fuzz_main(int argc, char** argv, const std::string& driver_name,
              std::uint64_t default_iterations,
              const std::function<void(Rng&)>& body);

}  // namespace provml::testkit

/// Fuzz assertion: throws FuzzFailure carrying `message` (a std::string
/// expression; build it with operator+ / std::to_string as needed).
#define FUZZ_CHECK(cond, message)                                            \
  do {                                                                       \
    if (!(cond)) {                                                           \
      throw ::provml::testkit::FuzzFailure(std::string("FUZZ_CHECK(" #cond   \
                                                       ") failed: ") +       \
                                           (message));                       \
    }                                                                        \
  } while (0)
