// Seeded deterministic RNG for the test/fuzz harness. SplitMix64-based:
// tiny, fast, and — unlike std::mt19937_64 + <random> distributions —
// guaranteed to produce the same stream on every compiler and libstdc++
// version, so a seed printed by CI reproduces bit-for-bit anywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace provml::testkit {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound 0 returns 0. Modulo bias is irrelevant
  /// at fuzzing bounds (<< 2^32) and keeps the stream portable.
  std::uint64_t below(std::uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// True with probability `p`.
  bool chance(double p) { return unit() < p; }

  std::uint8_t byte() { return static_cast<std::uint8_t>(next() & 0xFF); }

  /// A statistically independent generator derived from this one; lets a
  /// driver hand sub-streams to helpers without coupling their draws.
  Rng fork() { return Rng(next() ^ 0xA5A5A5A5DEADBEEFull); }

  /// A random element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& options) {
    return options[below(options.size())];
  }

  /// Derives the per-iteration seed the harness uses (and prints).
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t iteration) {
    std::uint64_t s = seed ^ (0x6C62272E07BB0142ull + iteration * 0x100000001B3ull);
    Rng r(s);
    return r.next();
  }

 private:
  std::uint64_t state_;
};

}  // namespace provml::testkit
