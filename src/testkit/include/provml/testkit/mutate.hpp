// Byte-level mutation engine: degrades valid inputs into adversarial ones.
// Operations are the classic fuzzing moves — bitflips, byte sets, erase,
// truncate, splice (copy a range elsewhere), repeat, insert noise, and
// magic-value stamps (0x00/0xFF/0x80 and maxed varint continuations) that
// target length fields and framing bytes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "provml/testkit/rng.hpp"

namespace provml::testkit {

struct MutateOptions {
  int min_mutations = 1;
  int max_mutations = 4;
  bool allow_growth = true;  ///< false restricts to in-place + shrinking ops
};

/// Applies 1..max random mutations to a copy of `input`. Mutating an empty
/// input yields a short random byte string (there is nothing to flip).
[[nodiscard]] std::vector<std::uint8_t> mutate(Rng& rng,
                                               const std::vector<std::uint8_t>& input,
                                               const MutateOptions& opts = {});

/// String convenience wrapper over the byte mutator.
[[nodiscard]] std::string mutate(Rng& rng, std::string_view input,
                                 const MutateOptions& opts = {});

/// Truncates at a random point (always returns a strict prefix when
/// `input` is non-empty) — the "torn write / torn frame" primitive.
[[nodiscard]] std::vector<std::uint8_t> truncate(Rng& rng,
                                                 const std::vector<std::uint8_t>& input);
[[nodiscard]] std::string truncate(Rng& rng, std::string_view input);

}  // namespace provml::testkit
