// Testkit view of the fault-injection layer. The registry itself lives in
// provml_common (provml/common/fault_inject.hpp) so that production
// modules — storage, net, compress — can host fault points without
// depending on the testkit; this header is what tests and fuzz drivers
// include, alongside the generators and mutator.
//
// Typical use:
//   fault::ScopedFault f("storage.write", {.fail_on_nth = 3});
//   Status s = store.write(metrics, path);   // 3rd file write fails
//   // f leaves scope -> point disarmed even if an assertion throws
#pragma once

#include "provml/common/fault_inject.hpp"

namespace provml::testkit {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::ScopedFault;

}  // namespace provml::testkit
