// Structured random-input generators for property/fuzz tests. Every
// generator is a pure function of the Rng stream: same seed, same value —
// across platforms. Generators produce *valid* instances (documents that
// validate, requests that parse); the byte-level mutator (mutate.hpp) is
// what degrades them into adversarial input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "provml/graphstore/graph.hpp"
#include "provml/json/value.hpp"
#include "provml/net/http.hpp"
#include "provml/prov/model.hpp"
#include "provml/storage/series.hpp"
#include "provml/testkit/rng.hpp"

namespace provml::testkit {

// ------------------------------------------------------------------- strings

/// Random string mixing plain ASCII, JSON-escape-worthy characters, and
/// multi-byte UTF-8 sequences. `max_len` bounds the character count.
[[nodiscard]] std::string gen_string(Rng& rng, std::size_t max_len = 12);

/// Identifier-shaped string: [a-z][a-z0-9_]*, never empty.
[[nodiscard]] std::string gen_ident(Rng& rng, std::size_t max_len = 10);

/// Random byte payload with mixed texture (uniform noise, runs, stepped
/// integer-like sequences, doubles) so codecs see realistic shapes.
[[nodiscard]] std::vector<std::uint8_t> gen_bytes(Rng& rng, std::size_t max_len = 4096);

// ---------------------------------------------------------------------- JSON

/// Random JSON value, depth-bounded. Numbers are finite (JSON cannot
/// round-trip NaN/Inf); integers and doubles both appear.
[[nodiscard]] json::Value gen_json(Rng& rng, int max_depth = 4);

// ---------------------------------------------------------------------- PROV

struct ProvGenOptions {
  std::size_t max_elements = 12;   ///< per kind pool ceiling
  std::size_t max_relations = 20;
  bool with_bundles = true;
  bool with_typed_literals = true;
};

/// Random PROV document that passes Document::validate(): every relation
/// endpoint is a declared element of the kind its spec requires, every id
/// uses a declared prefix.
[[nodiscard]] prov::Document gen_prov_document(Rng& rng, const ProvGenOptions& opts = {});

// ----------------------------------------------------------- mutation streams

/// One logical store mutation, as the WAL and crash-recovery tests see it.
struct MutationOp {
  enum class Kind { kPut, kDelete };
  Kind kind = Kind::kPut;
  std::string name;     ///< document name (drawn from a small shared pool)
  prov::Document doc;   ///< payload; meaningful only for kPut
};

struct MutationStreamOptions {
  std::size_t max_ops = 24;        ///< stream length: 1..max_ops
  std::size_t name_pool = 4;       ///< distinct names, so puts overwrite and
                                   ///< deletes hit live documents often
  double delete_ratio = 0.3;
  ProvGenOptions doc_options{
      /*max_elements=*/4, /*max_relations=*/6,
      /*with_bundles=*/false, /*with_typed_literals=*/true};
};

/// Random put/delete sequence over a small name pool. Every put carries a
/// valid generated document; replaying any prefix of the stream yields a
/// well-defined store state — the fixture crash-recovery asserts against.
[[nodiscard]] std::vector<MutationOp> gen_mutation_stream(
    Rng& rng, const MutationStreamOptions& opts = {});

// --------------------------------------------------------------------- graph

struct GraphGenOptions {
  std::size_t max_nodes = 40;
  std::size_t max_edges = 80;
};

/// Random property graph whose labels, edge types, property keys, and
/// values come from small fixed pools — the same pools gen_graph_query()
/// draws from, so generated patterns actually match generated graphs.
[[nodiscard]] graphstore::PropertyGraph gen_property_graph(Rng& rng,
                                                           const GraphGenOptions& opts = {});

/// Random MATCH query text over the gen_property_graph() vocabulary: a
/// 1–3 node path with mixed edge directions/types (~25% variable-length,
/// every written bound form), optional inline property constraints, WHERE
/// conditions, and a RETURN list mixing plain variables with
/// count/min/max/avg aggregates, optionally ordered (ORDER BY over
/// returned refs, ASC/DESC) and paginated (SKIP/LIMIT). Always parses
/// (asserted by the equivalence property tests and fuzz_query).
[[nodiscard]] std::string gen_graph_query(Rng& rng);

// -------------------------------------------------------------------- metrics

struct MetricGenOptions {
  std::size_t max_series = 5;
  std::size_t max_samples = 400;
};

/// Random metric set: monotone steps, jittered timestamps, finite values
/// spanning smooth curves, constants, and wide-magnitude noise.
[[nodiscard]] storage::MetricSet gen_metric_set(Rng& rng, const MetricGenOptions& opts = {});

// ----------------------------------------------------------------------- HTTP

/// Random well-formed HTTP/1.1 request (parseable by net::RequestParser).
/// PUT/POST always carry Content-Length; header names/values are tokens
/// free of CR/LF/colon hazards.
[[nodiscard]] net::HttpRequest gen_http_request(Rng& rng);

/// Serializes a request the way a peer would put it on the wire (CRLF
/// framing, Content-Length when a body is present).
[[nodiscard]] std::string http_wire(const net::HttpRequest& request);

}  // namespace provml::testkit
