#include "provml/testkit/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>

namespace provml::testkit {
namespace {

bool parse_u64(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  out = v;
  return true;
}

FuzzOptions parse_options(int argc, char** argv, std::uint64_t default_iterations,
                          bool& ok) {
  FuzzOptions opts;
  opts.iterations = default_iterations;
  ok = true;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto take_value = [&](std::uint64_t& slot) {
      if (i + 1 >= argc || !parse_u64(argv[++i], slot)) ok = false;
    };
    if (std::strcmp(arg, "--seed") == 0) {
      take_value(opts.seed);
    } else if (std::strcmp(arg, "--iters") == 0) {
      take_value(opts.iterations);
    } else if (std::strcmp(arg, "--begin") == 0) {
      take_value(opts.begin);
    } else {
      ok = false;
    }
  }
  return opts;
}

}  // namespace

int fuzz_main(int argc, char** argv, const std::string& driver_name,
              std::uint64_t default_iterations, const std::function<void(Rng&)>& body) {
  bool ok = false;
  const FuzzOptions opts = parse_options(argc, argv, default_iterations, ok);
  if (!ok) {
    std::fprintf(stderr, "usage: %s [--seed N] [--iters N] [--begin N]\n", argv[0]);
    return 2;
  }

  for (std::uint64_t i = opts.begin; i < opts.begin + opts.iterations; ++i) {
    const std::uint64_t iter_seed = Rng::mix(opts.seed, i);
    Rng rng(iter_seed);
    try {
      body(rng);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "FAIL %s iteration=%llu iter_seed=0x%llx (master seed %llu):\n  %s\n"
                   "reproduce: %s --seed %llu --begin %llu --iters 1\n",
                   driver_name.c_str(), static_cast<unsigned long long>(i),
                   static_cast<unsigned long long>(iter_seed),
                   static_cast<unsigned long long>(opts.seed), e.what(), argv[0],
                   static_cast<unsigned long long>(opts.seed),
                   static_cast<unsigned long long>(i));
      return 1;
    }
  }
  std::printf("OK %s seed=%llu iterations=%llu..%llu\n", driver_name.c_str(),
              static_cast<unsigned long long>(opts.seed),
              static_cast<unsigned long long>(opts.begin),
              static_cast<unsigned long long>(opts.begin + opts.iterations - 1));
  return 0;
}

}  // namespace provml::testkit
