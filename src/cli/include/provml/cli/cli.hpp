// The `yprov` command-line interface (paper: "the yProv command line
// interface (CLI), which provides a set of commands for invoking the
// RESTful APIs"). Implemented as a function so tests can drive it without
// spawning processes.
//
//   yprov validate <file.provjson>
//   yprov stats    <file.provjson>
//   yprov convert  <file.provjson> --to provn|dot [--out <path>]
//   yprov diff     <a.provjson> <b.provjson>
//   yprov lineage  <file.provjson> <element-id> [--direction up|down] [--depth N]
//   yprov ingest   <store-dir> <name=file.provjson>...
//   yprov list     <store-dir>
//   yprov get      <store-dir> <name> [--element <id>]
//   yprov pack     <file> <out> [--codec lzss|rle|shuffle+lzss]
//   yprov unpack   <file> <out>
//   yprov serve    [--port N] [--threads K] [--snapshot DIR]
//
// `ingest`, `query`, and `stats` also accept `--url http://host:port` to
// talk to a running `yprov serve` instance over HTTP instead of a local
// store directory.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace provml::cli {

/// Dispatches one invocation; returns the process exit code (0 = success).
/// All human-readable output goes to `out`, errors to `err`.
int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

/// The usage text printed for `yprov help` and argument errors.
[[nodiscard]] std::string usage();

}  // namespace provml::cli
