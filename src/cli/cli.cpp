#include "provml/cli/cli.hpp"

#include <atomic>
#include <csignal>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>

#include "provml/common/strings.hpp"
#include "provml/compress/container.hpp"
#include "provml/analysis/forecast.hpp"
#include "provml/analysis/scaling_fit.hpp"
#include "provml/explorer/diff.hpp"
#include "provml/explorer/lineage.hpp"
#include "provml/explorer/stats.hpp"
#include "provml/explorer/subgraph.hpp"
#include "provml/explorer/timeline.hpp"
#include "provml/graphstore/query.hpp"
#include "provml/graphstore/service.hpp"
#include "provml/json/parse.hpp"
#include "provml/json/write.hpp"
#include "provml/net/client.hpp"
#include "provml/net/server.hpp"
#include "provml/net/yprov_http.hpp"
#include "provml/prov/constraints.hpp"
#include "provml/prov/dot.hpp"
#include "provml/prov/prov_json.hpp"
#include "provml/prov/prov_n.hpp"
#include "provml/prov/prov_xml.hpp"
#include "provml/prov/turtle.hpp"
#include "provml/rocrate/crate.hpp"
#include "provml/wal/wal.hpp"

namespace provml::cli {
namespace {

namespace fs = std::filesystem;

/// Splits args into positionals and --key value options.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
};

ParsedArgs parse_args(const std::vector<std::string>& args, std::size_t start) {
  ParsedArgs parsed;
  for (std::size_t i = start; i < args.size(); ++i) {
    if (args[i].size() > 2 && args[i].substr(0, 2) == "--") {
      const std::string key = args[i].substr(2);
      if (i + 1 < args.size()) {
        parsed.options[key] = args[++i];
      } else {
        parsed.options[key] = "";
      }
    } else {
      parsed.positional.push_back(args[i]);
    }
  }
  return parsed;
}

int fail(std::ostream& err, const std::string& message) {
  err << "error: " << message << "\n";
  return 1;
}

int cmd_validate(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "validate takes one file");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  const std::vector<std::string> problems = doc.value().validate();
  if (problems.empty()) {
    out << "valid: " << args.positional[0] << "\n";
    return 0;
  }
  for (const std::string& p : problems) out << "problem: " << p << "\n";
  return 2;
}

int cmd_stats(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "stats takes one file");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  out << explorer::to_string(explorer::document_stats(doc.value()));
  return 0;
}

int cmd_convert(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "convert takes one file");
  const auto to = args.options.find("to");
  if (to == args.options.end()) return fail(err, "convert requires --to provn|dot");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  std::string rendered;
  if (to->second == "provn") {
    rendered = prov::to_prov_n(doc.value());
  } else if (to->second == "dot") {
    rendered = prov::to_dot(doc.value());
  } else if (to->second == "ttl" || to->second == "turtle") {
    rendered = prov::to_turtle(doc.value());
  } else if (to->second == "xml") {
    rendered = prov::to_prov_xml(doc.value());
  } else {
    return fail(err, "unknown target format: " + to->second);
  }
  const auto out_path = args.options.find("out");
  if (out_path != args.options.end()) {
    Status s = compress::write_file_bytes(
        out_path->second,
        {reinterpret_cast<const std::uint8_t*>(rendered.data()), rendered.size()});
    if (!s.ok()) return fail(err, s.error().to_string());
    out << "wrote " << out_path->second << "\n";
  } else {
    out << rendered;
  }
  return 0;
}

int cmd_diff(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return fail(err, "diff takes two files");
  auto left = prov::read_prov_json_file(args.positional[0]);
  if (!left.ok()) return fail(err, left.error().to_string());
  auto right = prov::read_prov_json_file(args.positional[1]);
  if (!right.ok()) return fail(err, right.error().to_string());
  const explorer::RunDiff diff = explorer::diff_runs(left.value(), right.value());
  out << explorer::to_string(diff);
  return diff.identical() ? 0 : 3;
}

int cmd_lineage(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return fail(err, "lineage takes a file and an element id");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  if (doc.value().find_element(args.positional[1]) == nullptr) {
    return fail(err, "element not found: " + args.positional[1]);
  }
  auto direction = explorer::LineageDirection::kUpstream;
  const auto dir = args.options.find("direction");
  if (dir != args.options.end()) {
    if (dir->second == "down") direction = explorer::LineageDirection::kDownstream;
    else if (dir->second != "up") return fail(err, "direction must be up or down");
  }
  std::size_t depth = 0;
  const auto depth_opt = args.options.find("depth");
  if (depth_opt != args.options.end()) depth = std::stoul(depth_opt->second);
  for (const explorer::LineageHop& hop :
       explorer::lineage(doc.value(), args.positional[1], direction, depth)) {
    out << std::string(hop.depth * 2, ' ') << hop.id << "  (via " << hop.via << ")\n";
  }
  return 0;
}

int cmd_ingest(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    return fail(err, "ingest takes a store dir and name=file pairs");
  }
  const std::string& store_dir = args.positional[0];
  // Mutations go through the WAL, so every ingested document is durable
  // the moment its line prints — a crash mid-batch keeps the prefix.
  graphstore::YProvService service;
  const bool legacy_only = !wal::store_exists(store_dir) &&
                           fs::exists(fs::path(store_dir) / "index.json");
  Status attached = service.attach_wal(store_dir);
  if (!attached.ok()) return fail(err, attached.error().to_string());
  if (legacy_only) {
    // Upgrade path: replay the legacy index.json store into the WAL once.
    auto loaded = graphstore::YProvService::load(store_dir);
    if (!loaded.ok()) return fail(err, loaded.error().to_string());
    for (const std::string& name : loaded.value().list_documents()) {
      const prov::Document* doc = loaded.value().get_document(name);
      if (doc == nullptr) continue;
      Status s = service.put_document(name, *doc);
      if (!s.ok()) return fail(err, s.error().to_string());
    }
    out << "migrated legacy store (" << loaded.value().document_count()
        << " document(s)) to the WAL layout\n";
  }
  for (std::size_t i = 1; i < args.positional.size(); ++i) {
    const std::string& pair = args.positional[i];
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) return fail(err, "expected name=file, got: " + pair);
    auto doc = prov::read_prov_json_file(pair.substr(eq + 1));
    if (!doc.ok()) return fail(err, doc.error().to_string());
    Status s = service.put_document(pair.substr(0, eq), doc.value());
    if (!s.ok()) return fail(err, s.error().to_string());
    out << "ingested " << pair.substr(0, eq) << "\n";
  }
  Status s = service.wal_compact();  // fold the fresh tail into a snapshot
  if (!s.ok()) return fail(err, s.error().to_string());
  return 0;
}

int cmd_list(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "list takes a store dir");
  auto service = graphstore::YProvService::load(args.positional[0]);
  if (!service.ok()) return fail(err, service.error().to_string());
  for (const std::string& name : service.value().list_documents()) {
    out << name << "\n";
  }
  return 0;
}

int cmd_get(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return fail(err, "get takes a store dir and a name");
  auto service = graphstore::YProvService::load(args.positional[0]);
  if (!service.ok()) return fail(err, service.error().to_string());
  const auto element = args.options.find("element");
  graphstore::Request request;
  request.method = "GET";
  request.path = "/api/v0/documents/" + args.positional[1] +
                 (element != args.options.end() ? "/elements/" + element->second : "");
  const graphstore::Response response = service.value().handle(request);
  out << response.body << "\n";
  return response.status == 200 ? 0 : 4;
}

int cmd_pack(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return fail(err, "pack takes input and output paths");
  std::string codec = "lzss";
  const auto codec_opt = args.options.find("codec");
  if (codec_opt != args.options.end()) codec = codec_opt->second;
  Status s = compress::pack_file(args.positional[0], args.positional[1], codec);
  if (!s.ok()) return fail(err, s.error().to_string());
  out << "packed " << args.positional[0] << " -> " << args.positional[1] << " (" << codec
      << ")\n";
  return 0;
}

int cmd_unpack(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) return fail(err, "unpack takes input and output paths");
  auto data = compress::unpack_file(args.positional[0]);
  if (!data.ok()) return fail(err, data.error().to_string());
  Status s = compress::write_file_bytes(args.positional[1], data.value());
  if (!s.ok()) return fail(err, s.error().to_string());
  out << "unpacked " << args.positional[0] << " -> " << args.positional[1] << "\n";
  return 0;
}



int cmd_timeline(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "timeline takes one file");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  auto timeline = explorer::build_timeline(doc.value());
  if (!timeline.ok()) return fail(err, timeline.error().to_string());
  out << explorer::to_string(timeline.value());
  return 0;
}


int cmd_subgraph(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    return fail(err, "subgraph takes a file and an element id");
  }
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  explorer::SubgraphOptions options;
  const auto hops = args.options.find("hops");
  if (hops != args.options.end()) options.max_hops = std::stoul(hops->second);
  auto sub = explorer::extract_subgraph(doc.value(), args.positional[1], options);
  if (!sub.ok()) return fail(err, sub.error().to_string());
  const auto out_path = args.options.find("out");
  if (out_path != args.options.end()) {
    Status s = prov::write_prov_json_file(out_path->second, sub.value());
    if (!s.ok()) return fail(err, s.error().to_string());
    out << "wrote " << out_path->second << "\n";
  } else {
    out << prov::to_prov_json_string(sub.value()) << "\n";
  }
  return 0;
}

int cmd_constraints(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "constraints takes one file");
  auto doc = prov::read_prov_json_file(args.positional[0]);
  if (!doc.ok()) return fail(err, doc.error().to_string());
  const auto violations = prov::check_constraints(doc.value());
  if (violations.empty()) {
    out << "no constraint violations: " << args.positional[0] << "\n";
    return 0;
  }
  out << prov::to_string(violations);
  return 2;
}

/// One result cell as text: node columns render as the bound node's
/// prov_id, aggregate/property columns as their JSON value (bare strings
/// unquoted, everything else serialized).
std::string render_cell(const graphstore::PropertyGraph& graph,
                        const graphstore::ResultSet::Column& column,
                        const json::Value& cell) {
  if (column.is_node) {
    const graphstore::Node* n =
        graph.node(static_cast<graphstore::NodeId>(cell.as_int()));
    const json::Value* prov_id =
        n != nullptr ? n->properties.find("prov_id") : nullptr;
    return prov_id != nullptr && prov_id->is_string() ? prov_id->as_string() : "?";
  }
  return cell.is_string() ? cell.as_string() : json::write(cell);
}

void print_plan(const graphstore::QueryPlan& plan, std::ostream& out) {
  out << "anchor=";
  switch (plan.anchor) {
    case graphstore::QueryPlan::Anchor::kScanAll: out << "scan_all"; break;
    case graphstore::QueryPlan::Anchor::kLabel: out << "label:" << plan.label; break;
    case graphstore::QueryPlan::Anchor::kProperty:
      out << "property:" << plan.label << "." << plan.property_key;
      break;
  }
  out << " reversed=" << (plan.reversed ? "true" : "false")
      << " candidates=" << plan.estimated_candidates
      << " est_rows=" << plan.estimated_rows << " est_cost=" << plan.estimated_cost
      << "\n";
}

int cmd_query(const ParsedArgs& args, bool explain, std::size_t page_size,
              std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 2) {
    return fail(err, "query takes a store dir and a MATCH query");
  }
  auto service = graphstore::YProvService::load(args.positional[0]);
  if (!service.ok()) return fail(err, service.error().to_string());
  if (explain) {
    auto query = graphstore::parse_query(args.positional[1]);
    if (!query.ok()) return fail(err, query.error().to_string());
    print_plan(graphstore::explain_query(service.value().graph(), query.value()), out);
    return 0;
  }
  if (page_size > 0) {
    // Streamed: rows print as each page is pulled, so the first results
    // appear after O(page) work even on huge matches.
    auto cursor =
        graphstore::QueryCursor::open(service.value().graph(), args.positional[1]);
    if (!cursor.ok()) return fail(err, cursor.error().to_string());
    const std::vector<graphstore::ResultSet::Column>& columns =
        cursor.value().columns();
    std::size_t total = 0;
    while (!cursor.value().done()) {
      for (const std::vector<json::Value>& row : cursor.value().next(page_size)) {
        bool first = true;
        for (std::size_t c = 0; c < columns.size(); ++c) {
          if (!first) out << "  ";
          first = false;
          out << columns[c].name << "="
              << render_cell(service.value().graph(), columns[c], row[c]);
        }
        out << "\n";
        ++total;
      }
    }
    out << total << " row(s)\n";
    return 0;
  }
  auto table = graphstore::execute_query(service.value().graph(), args.positional[1]);
  if (!table.ok()) return fail(err, table.error().to_string());
  for (const std::vector<json::Value>& row : table.value().rows) {
    bool first = true;
    for (std::size_t c = 0; c < table.value().columns.size(); ++c) {
      if (!first) out << "  ";
      first = false;
      const graphstore::ResultSet::Column& column = table.value().columns[c];
      out << column.name << "="
          << render_cell(service.value().graph(), column, row[c]);
    }
    out << "\n";
  }
  out << table.value().rows.size() << " row(s)\n";
  return 0;
}

/// Shared: harvest every document of a store into a RunDatabase.
Expected<analysis::RunDatabase> load_run_database(const std::string& store_dir) {
  auto service = graphstore::YProvService::load(store_dir);
  if (!service.ok()) return service.error();
  analysis::RunDatabase db;
  for (const std::string& name : service.value().list_documents()) {
    const prov::Document* doc = service.value().get_document(name);
    if (doc == nullptr) continue;
    // Skip documents that are not run documents rather than failing.
    (void)db.add_document(*doc);
  }
  return db;
}

int cmd_fit(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "fit takes a store dir");
  auto db = load_run_database(args.positional[0]);
  if (!db.ok()) return fail(err, db.error().to_string());
  std::vector<analysis::ScalingPoint> points;
  for (const analysis::RunRecord& record : db.value().records()) {
    const auto n = record.features.find("parameters");
    const auto d = record.features.find("samples_seen");
    const auto loss = record.outputs.find("final_loss");
    if (n == record.features.end() || d == record.features.end() ||
        loss == record.outputs.end()) {
      continue;
    }
    points.push_back({n->second, d->second, loss->second});
  }
  auto law = analysis::fit_scaling_law(points);
  if (!law.ok()) return fail(err, law.error().to_string());
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "L(N, D) = %.4f + %.4g * N^-%.3f + %.4g * D^-%.3f   (rmse %.4g, %zu runs)\n",
                law.value().e, law.value().a, law.value().alpha, law.value().b,
                law.value().beta, law.value().rmse, points.size());
  out << buf;
  return 0;
}

int cmd_predict(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() < 2) {
    return fail(err, "predict takes a store dir, an output name, and key=value features");
  }
  auto db = load_run_database(args.positional[0]);
  if (!db.ok()) return fail(err, db.error().to_string());
  std::map<std::string, double> query;
  for (std::size_t i = 2; i < args.positional.size(); ++i) {
    const std::size_t eq = args.positional[i].find('=');
    if (eq == std::string::npos) {
      return fail(err, "expected key=value, got: " + args.positional[i]);
    }
    const auto value = strings::to_double(args.positional[i].substr(eq + 1));
    if (!value) return fail(err, "non-numeric feature value in " + args.positional[i]);
    query[args.positional[i].substr(0, eq)] = *value;
  }
  std::size_t k = 3;
  const auto k_opt = args.options.find("k");
  if (k_opt != args.options.end()) k = std::stoul(k_opt->second);
  auto prediction = db.value().predict(query, args.positional[1], k);
  if (!prediction.ok()) return fail(err, prediction.error().to_string());
  out << args.positional[1] << " = " << prediction.value().value
      << "  (confidence " << prediction.value().confidence << ", neighbors:";
  for (const std::string& n : prediction.value().neighbors_used) out << " " << n;
  out << ")\n";
  return 0;
}

int cmd_report(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "report takes a store dir");
  auto db = load_run_database(args.positional[0]);
  if (!db.ok()) return fail(err, db.error().to_string());
  if (db.value().records().empty()) {
    out << "store contains no run documents\n";
    return 0;
  }
  // Column set = union of outputs across runs.
  std::set<std::string> columns;
  for (const analysis::RunRecord& record : db.value().records()) {
    for (const auto& [name, value] : record.outputs) columns.insert(name);
  }
  out << "run";
  for (const std::string& column : columns) out << "\t" << column;
  out << "\n";
  for (const analysis::RunRecord& record : db.value().records()) {
    out << record.run_name;
    for (const std::string& column : columns) {
      const auto it = record.outputs.find(column);
      out << "\t";
      if (it != record.outputs.end()) out << it->second;
      else out << "-";
    }
    out << "\n";
  }
  return 0;
}

int cmd_crate(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (args.positional.size() != 1) return fail(err, "crate takes a directory");
  rocrate::CrateBuilder builder(args.positional[0]);
  const auto name = args.options.find("name");
  if (name != args.options.end()) builder.set_name(name->second);
  Status s = builder.add_all();
  if (!s.ok()) return fail(err, s.error().to_string());
  s = builder.write();
  if (!s.ok()) return fail(err, s.error().to_string());
  out << "crate written: " << args.positional[0] << "/ro-crate-metadata.json ("
      << builder.entries().size() << " entries)\n";
  return 0;
}

// ---------------------------------------------------------------- remote
// `--url http://host:port` switches ingest/query/stats from the local
// store to a running `yprov serve` instance, via the provml_net client.

int cmd_ingest_remote(const std::string& url, const ParsedArgs& args, std::ostream& out,
                      std::ostream& err) {
  if (args.positional.empty()) {
    return fail(err, "ingest --url takes name=file pairs (no store dir)");
  }
  auto parsed = net::parse_url(url);
  if (!parsed.ok()) return fail(err, parsed.error().to_string());
  net::HttpClient client(parsed.value().host, parsed.value().port);
  for (const std::string& pair : args.positional) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) return fail(err, "expected name=file, got: " + pair);
    const std::string name = pair.substr(0, eq);
    auto doc = prov::read_prov_json_file(pair.substr(eq + 1));
    if (!doc.ok()) return fail(err, doc.error().to_string());
    auto response = client.put(parsed.value().base_path + "/api/v0/documents/" + name,
                               prov::to_prov_json_string(doc.value(), /*pretty=*/false));
    if (!response.ok()) return fail(err, response.error().to_string());
    if (response.value().status != 201) {
      return fail(err, "server rejected " + name + ": " + response.value().body);
    }
    out << "ingested " << name << " -> " << url << "\n";
  }
  return 0;
}

/// Prints one wire-format row object (cells keyed by column name) as
/// `name=value` pairs on a line.
void print_remote_row(const json::Value& row, std::ostream& out) {
  if (!row.is_object()) return;
  bool first = true;
  for (const auto& [var, value] : row.as_object()) {
    if (!first) out << "  ";
    first = false;
    out << var << "=" << (value.is_string() ? value.as_string() : json::write(value));
  }
  out << "\n";
}

int cmd_query_remote(const std::string& url, const std::string& query, bool explain,
                     std::size_t page_size, std::ostream& out, std::ostream& err) {
  auto parsed = net::parse_url(url);
  if (!parsed.ok()) return fail(err, parsed.error().to_string());
  net::HttpClient client(parsed.value().host, parsed.value().port);
  if (page_size > 0 && !explain) {
    // Cursor protocol: fetch and print page by page. A 410 here means a
    // write invalidated the cursor mid-iteration; rerun the query.
    net::QueryPager pager(client, parsed.value().base_path, query, page_size);
    std::size_t total = 0;
    while (!pager.done()) {
      auto page = pager.next_page();
      if (!page.ok()) return fail(err, page.error().to_string());
      const json::Value* rows = page.value().find("rows");
      if (rows == nullptr || !rows->is_array()) {
        return fail(err, "malformed query page");
      }
      for (const json::Value& row : rows->as_array()) {
        print_remote_row(row, out);
        ++total;
      }
    }
    out << total << " row(s)\n";
    return 0;
  }
  const char* route = explain ? "/api/v0/explain" : "/api/v0/query";
  auto response = client.post(parsed.value().base_path + route, query);
  if (!response.ok()) return fail(err, response.error().to_string());
  if (response.value().status != 200) {
    return fail(err, "query failed: " + response.value().body);
  }
  auto body = json::parse(response.value().body);
  if (!body.ok()) return fail(err, body.error().to_string());
  if (explain) {
    if (!body.value().is_object()) return fail(err, "malformed explain response");
    bool first = true;
    for (const auto& [key, value] : body.value().as_object()) {
      if (!first) out << " ";
      first = false;
      out << key << "=" << (value.is_string() ? value.as_string() : json::write(value));
    }
    out << "\n";
    return 0;
  }
  const json::Value* rows = body.value().find("rows");
  if (rows == nullptr || !rows->is_array()) return fail(err, "malformed query response");
  for (const json::Value& row : rows->as_array()) {
    print_remote_row(row, out);
  }
  out << rows->as_array().size() << " row(s)\n";
  return 0;
}

int cmd_stats_remote(const std::string& url, const ParsedArgs& args, std::ostream& out,
                     std::ostream& err) {
  if (args.positional.size() != 1) {
    return fail(err, "stats --url takes a document name");
  }
  auto parsed = net::parse_url(url);
  if (!parsed.ok()) return fail(err, parsed.error().to_string());
  net::HttpClient client(parsed.value().host, parsed.value().port);
  auto response = client.get(parsed.value().base_path + "/api/v0/documents/" +
                             args.positional[0] + "/stats");
  if (!response.ok()) return fail(err, response.error().to_string());
  if (response.value().status != 200) {
    return fail(err, "stats failed: " + response.value().body);
  }
  out << response.value().body << "\n";
  return 0;
}

// ----------------------------------------------------------------- serve

std::atomic<net::HttpServer*> g_serving{nullptr};

void serve_signal_handler(int) {
  net::HttpServer* server = g_serving.load();
  if (server != nullptr) server->request_stop();  // async-signal-safe
}

int cmd_serve(const ParsedArgs& args, std::ostream& out, std::ostream& err) {
  if (!args.positional.empty()) return fail(err, "serve takes only options");
  net::ServerConfig config;
  const auto port = args.options.find("port");
  if (port != args.options.end()) {
    const auto value = strings::to_int64(port->second);
    if (!value || *value < 0 || *value > 65535) return fail(err, "invalid --port");
    config.port = static_cast<std::uint16_t>(*value);
  }
  const auto threads = args.options.find("threads");
  if (threads != args.options.end()) {
    const auto value = strings::to_int64(threads->second);
    if (!value || *value < 1 || *value > 256) return fail(err, "invalid --threads");
    config.threads = static_cast<unsigned>(*value);
  }
  const auto max_conns = args.options.find("max-connections");
  if (max_conns != args.options.end()) {
    const auto value = strings::to_int64(max_conns->second);
    if (!value || *value < 1) return fail(err, "invalid --max-connections (>= 1)");
    config.max_connections = static_cast<std::size_t>(*value);
  }

  net::YProvHttpApp::Options app_options;
  const auto cache = args.options.find("cache");
  if (cache != args.options.end()) {
    const auto value = strings::to_int64(cache->second);
    if (!value || *value < 0 || *value > 1000000) return fail(err, "invalid --cache");
    app_options.cache_capacity = static_cast<std::size_t>(*value);
  }

  // Graph shard count: stripes the service's lock so writers to different
  // documents stop contending. Rounded up to a power of two.
  std::size_t shards = 1;
  const auto shards_opt = args.options.find("shards");
  if (shards_opt != args.options.end()) {
    const auto value = strings::to_int64(shards_opt->second);
    if (!value || *value < 1 || *value > 256) return fail(err, "invalid --shards (1..256)");
    shards = static_cast<std::size_t>(*value);
  }

  // Durability options. --snapshot used to mean "load at start, save on
  // clean shutdown" — which silently lost every write on a crash. It is
  // now an alias for --data-dir, so both spellings get the WAL: every
  // acknowledged PUT/DELETE is on disk before the response leaves.
  std::string data_dir;
  const auto data_dir_opt = args.options.find("data-dir");
  const auto snapshot = args.options.find("snapshot");
  if (data_dir_opt != args.options.end()) {
    data_dir = data_dir_opt->second;
  } else if (snapshot != args.options.end()) {
    data_dir = snapshot->second;
  }
  wal::Options wal_options;
  const auto fsync_mode = args.options.find("fsync");
  if (fsync_mode != args.options.end()) {
    const auto policy = wal::parse_fsync_policy(fsync_mode->second);
    if (!policy.ok()) return fail(err, "invalid --fsync (every_write|interval|none)");
    wal_options.fsync_policy = policy.value();
  }
  const auto segment_bytes = args.options.find("wal-segment-bytes");
  if (segment_bytes != args.options.end()) {
    const auto value = strings::to_int64(segment_bytes->second);
    if (!value || *value < 1024) return fail(err, "invalid --wal-segment-bytes (>= 1024)");
    wal_options.segment_bytes = static_cast<std::size_t>(*value);
  }
  if (data_dir.empty() &&
      (fsync_mode != args.options.end() || segment_bytes != args.options.end())) {
    return fail(err, "--fsync/--wal-segment-bytes require --data-dir");
  }

  net::YProvHttpApp app(graphstore::YProvService(shards), app_options);
  if (!data_dir.empty()) {
    // Pre-WAL stores only hold index.json; migrate them through load().
    if (!wal::store_exists(data_dir) &&
        fs::exists(fs::path(data_dir) / "index.json")) {
      auto legacy = graphstore::YProvService::load(data_dir);
      if (!legacy.ok()) return fail(err, legacy.error().to_string());
      Status migrated = legacy.value().save(data_dir);
      if (!migrated.ok()) return fail(err, migrated.error().to_string());
      out << "migrated legacy store at " << data_dir << " to the WAL layout\n";
    }
    Status attached = app.service().attach_wal(data_dir, wal_options);
    if (!attached.ok()) return fail(err, attached.error().to_string());
    out << "loaded " << app.service().document_count() << " document(s) from "
        << data_dir << " (wal lsn " << app.service().wal_stats().last_lsn << ")\n";
  }

  net::HttpServer server(config,
                         [&app](const net::HttpRequest& r) { return app.handle(r); });
  // Workers log concurrently; serialize writes to the shared stream.
  auto log_mutex = std::make_shared<std::mutex>();
  server.set_access_logger([&out, log_mutex](const std::string& line) {
    const std::lock_guard<std::mutex> lock(*log_mutex);
    out << line << "\n";
  });
  // /api/v0/health reports the event loop's gauges alongside app counters.
  app.set_server_stats_provider([&server] { return server.stats(); });
  Status started = server.start();
  if (!started.ok()) return fail(err, started.error().to_string());
  out << "yprov service listening on http://" << config.host << ":" << server.port()
      << " (epoll event loop, " << config.threads << " worker thread(s), "
      << app.service().shard_count() << " graph shard(s), ";
  if (config.max_connections > 0) {
    out << "max " << config.max_connections << " connection(s), ";
  }
  out << "Ctrl-C to stop)\n";

  g_serving.store(&server);
  const auto previous_int = std::signal(SIGINT, serve_signal_handler);
  const auto previous_term = std::signal(SIGTERM, serve_signal_handler);
  server.wait();
  (void)std::signal(SIGINT, previous_int);
  (void)std::signal(SIGTERM, previous_term);
  g_serving.store(nullptr);

  if (!data_dir.empty()) {
    // Everything acknowledged is already in the log; compaction just folds
    // the tail into a snapshot so the next start replays less.
    Status compacted = app.service().wal_compact();
    if (!compacted.ok()) return fail(err, compacted.error().to_string());
    out << "store compacted at " << data_dir << " (wal lsn "
        << app.service().wal_stats().last_lsn << ")\n";
  }
  const net::ServerStats stats = server.stats();
  out << "server stopped after " << stats.requests_handled << " request(s)\n";
  return 0;
}

}  // namespace

std::string usage() {
  return "usage: yprov <command> [args]\n"
         "commands:\n"
         "  validate <file>                     check a PROV-JSON document\n"
         "  stats <file>                        element/relation counts\n"
         "  stats --url <svc> <name>            stats of a served document\n"
         "  convert <file> --to provn|dot|ttl|xml re-serialize a document\n"
         "  constraints <file>                  PROV-CONSTRAINTS checks\n"
         "  timeline <file>                     Gantt view of run activities\n"
         "  subgraph <file> <id> [--hops N] [--out <path>]\n"
         "  diff <a> <b>                        compare two run documents\n"
         "  lineage <file> <id> [--direction up|down] [--depth N]\n"
         "  ingest <store> <name=file>...       add documents to a store\n"
         "  ingest --url <svc> <name=file>...   upload documents over HTTP\n"
         "  list <store>                        list stored documents\n"
         "  get <store> <name> [--element <id>] query the store\n"
         "  query <store> '<MATCH ...>' [--explain] [--page-size N]\n"
         "                                      pattern query over the graph\n"
         "                                      (aggregates, *1..n paths,\n"
         "                                      ORDER BY/SKIP/LIMIT);\n"
         "                                      --explain prints the plan;\n"
         "                                      --page-size streams rows N at\n"
         "                                      a time through a cursor\n"
         "  query --url <svc> '<MATCH ...>' [--explain] [--page-size N]\n"
         "                                      the same over HTTP (pages\n"
         "                                      via the cursor protocol)\n"
         "  serve [--port N] [--threads K] [--shards N] [--data-dir DIR] [--cache N]\n"
         "        [--max-connections N] [--fsync every_write|interval|none]\n"
         "        [--wal-segment-bytes N]\n"
         "                                      run the yProv HTTP service;\n"
         "                                      --data-dir persists writes via a\n"
         "                                      WAL (--snapshot is an alias)\n"
         "  fit <store>                         fit the scaling law to stored runs\n"
         "  predict <store> <output> k=v...     k-NN forecast from stored runs\n"
         "  report <store>                      tabulate run outputs\n"
         "  crate <dir> [--name <n>]            wrap a directory as an RO-Crate\n"
         "  pack <in> <out> [--codec lzss]      compress a file\n"
         "  unpack <in> <out>                   decompress a container\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 1 : 0;
  }
  const std::string& command = args[0];
  const ParsedArgs parsed = parse_args(args, 1);
  if (command == "validate") return cmd_validate(parsed, out, err);
  if (command == "constraints") return cmd_constraints(parsed, out, err);
  if (command == "timeline") return cmd_timeline(parsed, out, err);
  if (command == "subgraph") return cmd_subgraph(parsed, out, err);
  if (command == "query") {
    // --explain is a bare flag (no value), so pull it out before the
    // generic key/value parse would eat the following positional.
    std::vector<std::string> rest(args.begin() + 1, args.end());
    bool explain = false;
    for (auto it = rest.begin(); it != rest.end();) {
      if (*it == "--explain") {
        explain = true;
        it = rest.erase(it);
      } else {
        ++it;
      }
    }
    const ParsedArgs qargs = parse_args(rest, 0);
    std::size_t page_size = 0;  // 0 = one-shot (no paging)
    const auto page_opt = qargs.options.find("page-size");
    if (page_opt != qargs.options.end()) {
      const auto value = strings::to_int64(page_opt->second);
      if (!value || *value < 1) return fail(err, "invalid --page-size (>= 1)");
      page_size = static_cast<std::size_t>(*value);
    }
    if (qargs.options.count("url") != 0) {
      if (qargs.positional.size() != 1) {
        return fail(err, "query --url takes a MATCH query (no store dir)");
      }
      return cmd_query_remote(qargs.options.at("url"), qargs.positional[0], explain,
                              page_size, out, err);
    }
    return cmd_query(qargs, explain, page_size, out, err);
  }
  if (command == "serve") return cmd_serve(parsed, out, err);
  if (command == "fit") return cmd_fit(parsed, out, err);
  if (command == "predict") return cmd_predict(parsed, out, err);
  if (command == "report") return cmd_report(parsed, out, err);
  if (command == "crate") return cmd_crate(parsed, out, err);
  if (command == "stats") {
    if (parsed.options.count("url") != 0) {
      return cmd_stats_remote(parsed.options.at("url"), parsed, out, err);
    }
    return cmd_stats(parsed, out, err);
  }
  if (command == "convert") return cmd_convert(parsed, out, err);
  if (command == "diff") return cmd_diff(parsed, out, err);
  if (command == "lineage") return cmd_lineage(parsed, out, err);
  if (command == "ingest") {
    if (parsed.options.count("url") != 0) {
      return cmd_ingest_remote(parsed.options.at("url"), parsed, out, err);
    }
    return cmd_ingest(parsed, out, err);
  }
  if (command == "list") return cmd_list(parsed, out, err);
  if (command == "get") return cmd_get(parsed, out, err);
  if (command == "pack") return cmd_pack(parsed, out, err);
  if (command == "unpack") return cmd_unpack(parsed, out, err);
  err << "unknown command: " << command << "\n" << usage();
  return 1;
}

}  // namespace provml::cli
