#include "provml/explorer/subgraph.hpp"

#include <deque>
#include <set>

namespace provml::explorer {

Expected<prov::Document> extract_subgraph(const prov::Document& doc,
                                          const std::string& center_id,
                                          const SubgraphOptions& options) {
  if (doc.find_element(center_id) == nullptr) {
    return Error{"element not found: " + center_id, "subgraph"};
  }

  // Undirected BFS over all relations up to max_hops.
  std::set<std::string> keep{center_id};
  std::deque<std::pair<std::string, std::size_t>> frontier{{center_id, 0}};
  while (!frontier.empty()) {
    const auto [current, depth] = frontier.front();
    frontier.pop_front();
    if (depth == options.max_hops) continue;
    for (const prov::Relation& r : doc.relations()) {
      const std::string* next = nullptr;
      if (r.subject == current) next = &r.object;
      else if (r.object == current) next = &r.subject;
      else continue;
      if (keep.insert(*next).second) frontier.emplace_back(*next, depth + 1);
    }
  }

  prov::Document out;
  for (const auto& [prefix, iri] : doc.namespaces()) {
    out.declare_namespace(prefix, iri);
  }
  for (const prov::Element& e : doc.elements()) {
    if (keep.count(e.id) == 0) continue;
    if (!options.include_agents && e.kind == prov::ElementKind::kAgent &&
        e.id != center_id) {
      continue;
    }
    switch (e.kind) {
      case prov::ElementKind::kEntity:
        out.add_entity(e.id, prov::Attributes(e.attributes));
        break;
      case prov::ElementKind::kActivity:
        out.add_activity(e.id, prov::Attributes(e.attributes), e.start_time, e.end_time);
        break;
      case prov::ElementKind::kAgent:
        out.add_agent(e.id, prov::Attributes(e.attributes));
        break;
    }
  }
  for (const prov::Relation& r : doc.relations()) {
    if (out.find_element(r.subject) == nullptr || out.find_element(r.object) == nullptr) {
      continue;
    }
    out.add_relation(r.kind, r.subject, r.object, r.time,
                     prov::Attributes(r.attributes));
  }
  return out;
}

}  // namespace provml::explorer
