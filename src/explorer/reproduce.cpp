#include "provml/explorer/reproduce.hpp"

#include "provml/prov/prov_json.hpp"

namespace provml::explorer {
namespace {

const std::string* string_attr(const prov::Element& e, std::string_view key) {
  const prov::AttributeValue* attr = prov::find_attribute(e.attributes, key);
  if (attr == nullptr || !attr->value.is_string()) return nullptr;
  return &attr->value.as_string();
}

bool has_type(const prov::Element& e, std::string_view type) {
  for (const auto& [key, value] : e.attributes) {
    if (key == "prov:type" && value.value.is_string() && value.value.as_string() == type) {
      return true;
    }
  }
  return false;
}

}  // namespace

Expected<RunRecipe> extract_recipe(const prov::Document& doc) {
  RunRecipe recipe;
  bool found_run = false;

  for (const prov::Element& e : doc.elements()) {
    if (has_type(e, "provml:Experiment")) {
      if (const std::string* name = string_attr(e, "provml:name")) recipe.experiment = *name;
    } else if (has_type(e, "provml:RunExecution")) {
      found_run = true;
      if (const std::string* name = string_attr(e, "provml:run_name")) {
        recipe.run_name = *name;
      }
    } else if (has_type(e, "prov:Person")) {
      if (const std::string* user = string_attr(e, "provml:username")) recipe.user = *user;
    } else if (has_type(e, "provml:Parameter")) {
      const std::string* name = string_attr(e, "provml:name");
      const std::string* role = string_attr(e, "provml:role");
      const prov::AttributeValue* value = prov::find_attribute(e.attributes, "provml:value");
      if (name == nullptr || role == nullptr) continue;
      if (*role == "input") {
        recipe.input_params[*name] = value != nullptr ? value->value : json::Value(nullptr);
      } else {
        recipe.expected_outputs.insert("param:" + *name);
      }
    } else if (has_type(e, "provml:Artifact")) {
      const std::string* role = string_attr(e, "provml:role");
      const std::string* path = string_attr(e, "provml:path");
      // Artifact ids are "ex:artifact/<name>"; recover the name.
      std::string name = e.id;
      const std::size_t slash = name.rfind('/');
      if (slash != std::string::npos) name = name.substr(slash + 1);
      if (role != nullptr && *role == "input") {
        recipe.input_artifacts[name] = path != nullptr ? *path : "";
      } else {
        recipe.expected_outputs.insert("artifact:" + name);
      }
    } else if (has_type(e, "provml:SourceCode")) {
      if (const std::string* path = string_attr(e, "provml:path")) {
        recipe.source_code = *path;
      }
    } else if (has_type(e, "provml:Context")) {
      if (const std::string* ctx = string_attr(e, "provml:context")) {
        recipe.contexts.insert(*ctx);
      }
    }
  }

  if (!found_run) {
    return Error{"document contains no provml:RunExecution activity", "recipe"};
  }
  return recipe;
}

Expected<RunRecipe> extract_recipe_file(const std::string& path) {
  Expected<prov::Document> doc = prov::read_prov_json_file(path);
  if (!doc.ok()) return doc.error();
  return extract_recipe(doc.value());
}

ReplayReport replay(const RunRecipe& recipe, const Executor& executor) {
  const ReplayResult result = executor(recipe);
  ReplayReport report;
  for (const std::string& expected : recipe.expected_outputs) {
    if (result.produced_outputs.count(expected) == 0) {
      report.missing_outputs.insert(expected);
    }
  }
  for (const std::string& produced : result.produced_outputs) {
    if (recipe.expected_outputs.count(produced) == 0) {
      report.extra_outputs.insert(produced);
    }
  }
  report.reproduced = report.missing_outputs.empty();
  return report;
}

}  // namespace provml::explorer
