#include "provml/explorer/lineage.hpp"

#include <string>
#include <unordered_map>
#include <vector>

#include "provml/graphstore/query.hpp"

namespace provml::explorer {
namespace {

/// The document's dependency structure as a property graph: one node per
/// element id appearing in any relation, one typed edge subject → object
/// per relation (the relation's json_key is the edge type), in
/// declaration order. Adjacency preserves insertion order, so walking it
/// reproduces the historical relation-scan BFS hop for hop.
///
/// In PROV, every relation's subject depends on its object: used(a, e)
/// means activity a consumed e; wasGeneratedBy(e, a) means e came from a.
/// Upstream therefore walks subject → object — outgoing edges here.
struct DependencyGraph {
  graphstore::PropertyGraph graph;
  std::unordered_map<std::string, graphstore::NodeId> ids;
  std::unordered_map<graphstore::NodeId, const std::string*> names;

  explicit DependencyGraph(const prov::Document& doc) {
    auto intern = [&](const std::string& id) {
      const auto it = ids.find(id);
      if (it != ids.end()) return it->second;
      const graphstore::NodeId node = graph.add_node({});
      ids.emplace(id, node);
      return node;
    };
    for (const prov::Relation& r : doc.relations()) {
      const graphstore::NodeId subject = intern(r.subject);
      const graphstore::NodeId object = intern(r.object);
      (void)graph.add_edge(subject, object, prov::relation_spec(r.kind).json_key);
    }
    for (const auto& [id, node] : ids) names.emplace(node, &id);
  }
};

}  // namespace

std::vector<LineageHop> lineage(const prov::Document& doc, const std::string& start_id,
                                LineageDirection direction, std::size_t max_depth) {
  const DependencyGraph dep(doc);
  const auto start = dep.ids.find(start_id);
  if (start == dep.ids.end()) return {};
  const graphstore::Direction dir = direction == LineageDirection::kUpstream
                                        ? graphstore::Direction::kOut
                                        : graphstore::Direction::kIn;
  const std::size_t hops = max_depth == 0 ? graphstore::kUnboundedHops : max_depth;
  std::vector<LineageHop> result;
  for (const graphstore::ReachHop& hop : graphstore::var_length_reach(
           dep.graph, start->second, dir, /*type=*/"", hops)) {
    const graphstore::Edge* via = dep.graph.edge(hop.via);
    result.push_back({*dep.names.at(hop.node), via != nullptr ? via->type : "",
                      hop.depth});
  }
  return result;
}

std::vector<LineageHop> upstream(const prov::Document& doc, const std::string& id,
                                 std::size_t max_depth) {
  return lineage(doc, id, LineageDirection::kUpstream, max_depth);
}

std::vector<LineageHop> downstream(const prov::Document& doc, const std::string& id,
                                   std::size_t max_depth) {
  return lineage(doc, id, LineageDirection::kDownstream, max_depth);
}

}  // namespace provml::explorer
