#include "provml/explorer/lineage.hpp"

#include <deque>
#include <set>
#include <unordered_map>

namespace provml::explorer {
namespace {

/// In PROV, every relation's subject depends on its object: used(a, e)
/// means activity a consumed e; wasGeneratedBy(e, a) means e came from a.
/// Upstream therefore walks subject → object.
struct DepEdge {
  const std::string* to;
  const char* via;
};

/// Edges bucketed by source id, so the BFS expands a node in O(degree)
/// instead of rescanning the whole relation list per frontier entry.
/// Buckets keep relation-declaration order, preserving hop order exactly.
std::unordered_map<std::string, std::vector<DepEdge>> dependency_index(
    const prov::Document& doc, LineageDirection direction) {
  std::unordered_map<std::string, std::vector<DepEdge>> index;
  for (const prov::Relation& r : doc.relations()) {
    const char* via = prov::relation_spec(r.kind).json_key;
    if (direction == LineageDirection::kUpstream) {
      index[r.subject].push_back({&r.object, via});
    } else {
      index[r.object].push_back({&r.subject, via});
    }
  }
  return index;
}

}  // namespace

std::vector<LineageHop> lineage(const prov::Document& doc, const std::string& start_id,
                                LineageDirection direction, std::size_t max_depth) {
  const auto index = dependency_index(doc, direction);
  std::vector<LineageHop> result;
  std::set<std::string> seen{start_id};
  std::deque<LineageHop> frontier{{start_id, "", 0}};
  while (!frontier.empty()) {
    const LineageHop current = frontier.front();
    frontier.pop_front();
    if (max_depth != 0 && current.depth == max_depth) continue;
    const auto bucket = index.find(current.id);
    if (bucket == index.end()) continue;
    for (const DepEdge& edge : bucket->second) {
      if (!seen.insert(*edge.to).second) continue;
      LineageHop hop{*edge.to, edge.via, current.depth + 1};
      result.push_back(hop);
      frontier.push_back(std::move(hop));
    }
  }
  return result;
}

std::vector<LineageHop> upstream(const prov::Document& doc, const std::string& id,
                                 std::size_t max_depth) {
  return lineage(doc, id, LineageDirection::kUpstream, max_depth);
}

std::vector<LineageHop> downstream(const prov::Document& doc, const std::string& id,
                                   std::size_t max_depth) {
  return lineage(doc, id, LineageDirection::kDownstream, max_depth);
}

}  // namespace provml::explorer
