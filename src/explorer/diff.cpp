#include "provml/explorer/diff.hpp"

#include <map>

#include "provml/json/write.hpp"

namespace provml::explorer {
namespace {

bool has_type(const prov::Element& e, std::string_view type) {
  for (const auto& [key, value] : e.attributes) {
    if (key == "prov:type" && value.value.is_string() && value.value.as_string() == type) {
      return true;
    }
  }
  return false;
}

std::string display_name(const prov::Element& e) {
  const prov::AttributeValue* name = prov::find_attribute(e.attributes, "provml:name");
  if (name != nullptr && name->value.is_string()) return name->value.as_string();
  return e.id;
}

std::map<std::string, json::Value> collect_params(const prov::Document& doc) {
  std::map<std::string, json::Value> params;
  for (const prov::Element& e : doc.elements()) {
    if (!has_type(e, "provml:Parameter")) continue;
    const prov::AttributeValue* value = prov::find_attribute(e.attributes, "provml:value");
    params[display_name(e)] = value != nullptr ? value->value : json::Value(nullptr);
  }
  return params;
}

std::map<std::string, bool> collect_named(const prov::Document& doc,
                                          std::string_view type) {
  std::map<std::string, bool> out;
  for (const prov::Element& e : doc.elements()) {
    if (!has_type(e, type)) continue;
    std::string key = display_name(e);
    if (type == "provml:Metric") {
      const prov::AttributeValue* ctx = prov::find_attribute(e.attributes, "provml:context");
      if (ctx != nullptr && ctx->value.is_string()) {
        key = ctx->value.as_string() + "/" + key;
      }
    }
    out[key] = true;
  }
  return out;
}

void diff_keys(const std::map<std::string, bool>& left,
               const std::map<std::string, bool>& right,
               std::vector<std::string>& only_left, std::vector<std::string>& only_right) {
  for (const auto& [key, unused] : left) {
    if (right.count(key) == 0) only_left.push_back(key);
  }
  for (const auto& [key, unused] : right) {
    if (left.count(key) == 0) only_right.push_back(key);
  }
}

}  // namespace

RunDiff diff_runs(const prov::Document& left, const prov::Document& right) {
  RunDiff diff;

  const auto left_params = collect_params(left);
  const auto right_params = collect_params(right);
  for (const auto& [name, value] : left_params) {
    const auto it = right_params.find(name);
    if (it == right_params.end()) {
      diff.params_only_left.push_back(name);
    } else if (!(value == it->second)) {
      diff.params_changed.push_back({name, value, it->second});
    }
  }
  for (const auto& [name, value] : right_params) {
    if (left_params.count(name) == 0) diff.params_only_right.push_back(name);
  }

  diff_keys(collect_named(left, "provml:Metric"), collect_named(right, "provml:Metric"),
            diff.metrics_only_left, diff.metrics_only_right);
  diff_keys(collect_named(left, "provml:Artifact"), collect_named(right, "provml:Artifact"),
            diff.artifacts_only_left, diff.artifacts_only_right);
  return diff;
}

std::string to_string(const RunDiff& diff) {
  if (diff.identical()) return "runs are structurally identical\n";
  std::string out;
  auto list = [&out](const char* title, const std::vector<std::string>& items) {
    if (items.empty()) return;
    out += title;
    out += ":\n";
    for (const std::string& item : items) out += "  " + item + "\n";
  };
  list("parameters only in left", diff.params_only_left);
  list("parameters only in right", diff.params_only_right);
  if (!diff.params_changed.empty()) {
    out += "parameters changed:\n";
    for (const ParamChange& change : diff.params_changed) {
      out += "  " + change.name + ": " + json::write(change.left) + " -> " +
             json::write(change.right) + "\n";
    }
  }
  list("metrics only in left", diff.metrics_only_left);
  list("metrics only in right", diff.metrics_only_right);
  list("artifacts only in left", diff.artifacts_only_left);
  list("artifacts only in right", diff.artifacts_only_right);
  return out;
}

}  // namespace provml::explorer
