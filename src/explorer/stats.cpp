#include "provml/explorer/stats.hpp"

#include <cstdio>

namespace provml::explorer {

std::size_t DocumentStats::total_relations() const {
  std::size_t total = 0;
  for (const auto& [key, count] : relations) total += count;
  return total;
}

namespace {

void accumulate(const prov::Document& doc, DocumentStats& stats) {
  for (const prov::Element& e : doc.elements()) {
    switch (e.kind) {
      case prov::ElementKind::kEntity: ++stats.entities; break;
      case prov::ElementKind::kActivity: ++stats.activities; break;
      case prov::ElementKind::kAgent: ++stats.agents; break;
    }
    stats.attributes += e.attributes.size();
  }
  for (const prov::Relation& r : doc.relations()) {
    ++stats.relations[prov::relation_spec(r.kind).json_key];
  }
  for (const auto& [id, sub] : doc.bundles()) {
    ++stats.bundles;
    accumulate(sub, stats);
  }
}

}  // namespace

DocumentStats document_stats(const prov::Document& doc) {
  DocumentStats stats;
  stats.namespaces = doc.namespaces().size();
  accumulate(doc, stats);
  return stats;
}

std::string to_string(const DocumentStats& stats) {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "entities", stats.entities);
  out += line;
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "activities", stats.activities);
  out += line;
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "agents", stats.agents);
  out += line;
  for (const auto& [key, count] : stats.relations) {
    std::snprintf(line, sizeof line, "%-20s %8zu\n", key.c_str(), count);
    out += line;
  }
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "bundles", stats.bundles);
  out += line;
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "attributes", stats.attributes);
  out += line;
  std::snprintf(line, sizeof line, "%-20s %8zu\n", "namespaces", stats.namespaces);
  out += line;
  return out;
}

}  // namespace provml::explorer
