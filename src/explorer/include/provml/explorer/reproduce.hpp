// Reproducibility from a PROV-JSON file — the paper's goal that
// "reproducing an experiment by simply sharing a provJSON file would become
// trivial". A RunRecipe is the executable summary extracted from a run
// document: the input parameters, input artifacts, and source reference the
// execution needs, and the outputs it is expected to regenerate. replay()
// hands the recipe to a caller-supplied executor and verifies the outputs.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>

#include "provml/common/expected.hpp"
#include "provml/json/value.hpp"
#include "provml/prov/model.hpp"

namespace provml::explorer {

struct RunRecipe {
  std::string experiment;
  std::string run_name;
  std::string user;
  std::map<std::string, json::Value> input_params;
  std::map<std::string, std::string> input_artifacts;   ///< name → path
  std::set<std::string> expected_outputs;               ///< artifact + output-param names
  std::string source_code;                               ///< path if recorded
  std::set<std::string> contexts;                        ///< stages the run had
};

/// Extracts the recipe from a run document written by the core logger.
[[nodiscard]] Expected<RunRecipe> extract_recipe(const prov::Document& doc);

/// Loads a PROV-JSON file and extracts its recipe.
[[nodiscard]] Expected<RunRecipe> extract_recipe_file(const std::string& path);

/// What an executor reports back: the named outputs it produced.
struct ReplayResult {
  std::set<std::string> produced_outputs;
};

using Executor = std::function<ReplayResult(const RunRecipe&)>;

struct ReplayReport {
  bool reproduced = false;                 ///< all expected outputs produced
  std::set<std::string> missing_outputs;   ///< expected but not produced
  std::set<std::string> extra_outputs;     ///< produced but not expected
};

/// Runs `executor` on the recipe and checks its outputs against the
/// document's expectations.
[[nodiscard]] ReplayReport replay(const RunRecipe& recipe, const Executor& executor);

}  // namespace provml::explorer
