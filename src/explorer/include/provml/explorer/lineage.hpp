// Lineage queries over PROV documents — the yProv Explorer's core
// operation: "track the lineage of environmental data, model updates, and
// system parameters" (paper Section 1). Upstream follows the dependency
// direction of each relation (an entity depends on the activity that
// generated it, an activity on the entities it used, ...); downstream is
// the reverse (impact analysis).
#pragma once

#include <string>
#include <vector>

#include "provml/prov/model.hpp"

namespace provml::explorer {

struct LineageHop {
  std::string id;            ///< the reached element
  std::string via;           ///< relation json_key that led here
  std::size_t depth = 0;     ///< hops from the start element
};

enum class LineageDirection { kUpstream, kDownstream };

/// BFS over the document's relations from `start_id`. `max_depth` == 0
/// means unlimited. The start element itself is not included.
[[nodiscard]] std::vector<LineageHop> lineage(const prov::Document& doc,
                                              const std::string& start_id,
                                              LineageDirection direction,
                                              std::size_t max_depth = 0);

/// Convenience wrappers.
[[nodiscard]] std::vector<LineageHop> upstream(const prov::Document& doc,
                                               const std::string& id,
                                               std::size_t max_depth = 0);
[[nodiscard]] std::vector<LineageHop> downstream(const prov::Document& doc,
                                                 const std::string& id,
                                                 std::size_t max_depth = 0);

}  // namespace provml::explorer
