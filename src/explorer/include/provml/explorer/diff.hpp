// Run comparison — "it is also possible to compare the results of
// successive, related runs ... better understanding of the impact of
// hyperparameters and model configurations" (paper Section 4). Works on any
// pair of PROV documents produced by the core logger.
#pragma once

#include <string>
#include <vector>

#include "provml/json/value.hpp"
#include "provml/prov/model.hpp"

namespace provml::explorer {

struct ParamChange {
  std::string name;
  json::Value left;   ///< null if absent on the left
  json::Value right;  ///< null if absent on the right
};

struct RunDiff {
  std::vector<std::string> params_only_left;
  std::vector<std::string> params_only_right;
  std::vector<ParamChange> params_changed;

  std::vector<std::string> metrics_only_left;   ///< "context/name"
  std::vector<std::string> metrics_only_right;
  std::vector<std::string> artifacts_only_left;
  std::vector<std::string> artifacts_only_right;

  [[nodiscard]] bool identical() const {
    return params_only_left.empty() && params_only_right.empty() &&
           params_changed.empty() && metrics_only_left.empty() &&
           metrics_only_right.empty() && artifacts_only_left.empty() &&
           artifacts_only_right.empty();
  }
};

/// Structural diff of two run documents by their provml:Parameter,
/// provml:Metric, and provml:Artifact entities.
[[nodiscard]] RunDiff diff_runs(const prov::Document& left, const prov::Document& right);

/// Human-readable rendering of a diff.
[[nodiscard]] std::string to_string(const RunDiff& diff);

}  // namespace provml::explorer
