// Run timeline reconstruction: orders the activities of a run document
// (run → contexts → epochs) by their recorded times and renders a textual
// Gantt-style view — the Explorer's "what happened when" panel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "provml/common/expected.hpp"
#include "provml/prov/model.hpp"

namespace provml::explorer {

struct TimelineEntry {
  std::string id;
  std::string type;        ///< provml:RunExecution / Context / Epoch / Task / ...
  std::int64_t start_ms = 0;
  std::int64_t end_ms = 0; ///< 0 when the activity never ended
  int depth = 0;           ///< nesting via wasInformedBy chains

  [[nodiscard]] std::int64_t duration_ms() const {
    return end_ms > 0 ? end_ms - start_ms : 0;
  }
};

struct Timeline {
  std::vector<TimelineEntry> entries;  ///< sorted by start time, stable
  std::int64_t origin_ms = 0;          ///< earliest start
  std::int64_t horizon_ms = 0;         ///< latest end
};

/// Builds the timeline from every timed activity in `doc`. Depth follows
/// wasInformedBy edges (an epoch informed-by a context informed-by the run
/// nests two levels deep). Errors when no activity carries a start time.
[[nodiscard]] Expected<Timeline> build_timeline(const prov::Document& doc);

/// Renders the timeline as fixed-width text with proportional bars:
///   ex:run_0              |==============================| 120 ms
///     ex:run_0/TRAINING   |====----------================|  80 ms
[[nodiscard]] std::string to_string(const Timeline& timeline, int width = 40);

/// Parses the ISO-8601 UTC instants written by strings::iso8601_utc back
/// to epoch milliseconds; nullopt on malformed input.
[[nodiscard]] std::optional<std::int64_t> parse_iso8601_utc(const std::string& text);

}  // namespace provml::explorer
