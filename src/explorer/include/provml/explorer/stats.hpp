// Document statistics for quick inspection (the Explorer's summary pane).
#pragma once

#include <map>
#include <string>

#include "provml/prov/model.hpp"

namespace provml::explorer {

struct DocumentStats {
  std::size_t entities = 0;
  std::size_t activities = 0;
  std::size_t agents = 0;
  std::map<std::string, std::size_t> relations;  ///< json_key → count
  std::size_t bundles = 0;
  std::size_t attributes = 0;  ///< total attribute pairs across elements
  std::size_t namespaces = 0;

  [[nodiscard]] std::size_t total_elements() const {
    return entities + activities + agents;
  }
  [[nodiscard]] std::size_t total_relations() const;
};

/// Gathers stats over `doc` including nested bundles.
[[nodiscard]] DocumentStats document_stats(const prov::Document& doc);

/// Fixed-width table rendering.
[[nodiscard]] std::string to_string(const DocumentStats& stats);

}  // namespace provml::explorer
