// Subgraph extraction: the Explorer's "focus on this element" operation.
// Cuts the k-hop neighbourhood of an element out of a document into a new,
// self-contained PROV document (namespaces copied, relations kept only when
// both endpoints survive).
#pragma once

#include <string>

#include "provml/common/expected.hpp"
#include "provml/prov/model.hpp"

namespace provml::explorer {

struct SubgraphOptions {
  std::size_t max_hops = 2;   ///< neighbourhood radius (0 = just the element)
  bool include_agents = true; ///< drop agents when false (pure data lineage)
};

/// Extracts the neighbourhood of `center_id`. Errors when the element does
/// not exist. The center element is always included.
[[nodiscard]] Expected<prov::Document> extract_subgraph(
    const prov::Document& doc, const std::string& center_id,
    const SubgraphOptions& options = {});

}  // namespace provml::explorer
