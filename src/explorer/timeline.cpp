#include "provml/explorer/timeline.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <map>

namespace provml::explorer {

std::optional<std::int64_t> parse_iso8601_utc(const std::string& text) {
  // Expected shape: YYYY-MM-DDTHH:MM:SS[.mmm][Z]
  std::tm tm{};
  int millis = 0;
  char zone = 0;
  const int matched =
      std::sscanf(text.c_str(), "%4d-%2d-%2dT%2d:%2d:%2d.%3d%c", &tm.tm_year, &tm.tm_mon,
                  &tm.tm_mday, &tm.tm_hour, &tm.tm_min, &tm.tm_sec, &millis, &zone);
  if (matched < 6) return std::nullopt;
  tm.tm_year -= 1900;
  tm.tm_mon -= 1;
  const std::time_t seconds = timegm(&tm);
  if (seconds == -1) return std::nullopt;
  return static_cast<std::int64_t>(seconds) * 1000 + (matched >= 7 ? millis : 0);
}

Expected<Timeline> build_timeline(const prov::Document& doc) {
  // Depth via wasInformedBy: informed activity is one level below its
  // informant.
  std::map<std::string, std::string> informant_of;
  for (const prov::Relation& r : doc.relations()) {
    if (r.kind == prov::RelationKind::kWasInformedBy) {
      informant_of[r.subject] = r.object;
    }
  }
  auto depth_of = [&](const std::string& id) {
    int depth = 0;
    std::string current = id;
    while (true) {
      const auto it = informant_of.find(current);
      if (it == informant_of.end() || depth > 32) break;
      current = it->second;
      ++depth;
    }
    return depth;
  };

  Timeline timeline;
  for (const prov::Element& e : doc.elements()) {
    if (e.kind != prov::ElementKind::kActivity || e.start_time.empty()) continue;
    const auto start = parse_iso8601_utc(e.start_time);
    if (!start) continue;
    TimelineEntry entry;
    entry.id = e.id;
    entry.start_ms = *start;
    if (!e.end_time.empty()) {
      entry.end_ms = parse_iso8601_utc(e.end_time).value_or(0);
    }
    const prov::AttributeValue* type = prov::find_attribute(e.attributes, "prov:type");
    if (type != nullptr && type->value.is_string()) entry.type = type->value.as_string();
    entry.depth = depth_of(e.id);
    timeline.entries.push_back(std::move(entry));
  }
  if (timeline.entries.empty()) {
    return Error{"document has no timed activities", "timeline"};
  }
  std::stable_sort(timeline.entries.begin(), timeline.entries.end(),
                   [](const TimelineEntry& a, const TimelineEntry& b) {
                     return a.start_ms != b.start_ms ? a.start_ms < b.start_ms
                                                     : a.depth < b.depth;
                   });
  timeline.origin_ms = timeline.entries.front().start_ms;
  timeline.horizon_ms = timeline.origin_ms;
  for (const TimelineEntry& e : timeline.entries) {
    timeline.horizon_ms = std::max(timeline.horizon_ms, std::max(e.start_ms, e.end_ms));
  }
  return timeline;
}

std::string to_string(const Timeline& timeline, int width) {
  const double span = std::max<std::int64_t>(1, timeline.horizon_ms - timeline.origin_ms);
  std::string out;
  for (const TimelineEntry& entry : timeline.entries) {
    const double begin_frac = static_cast<double>(entry.start_ms - timeline.origin_ms) / span;
    const std::int64_t effective_end = entry.end_ms > 0 ? entry.end_ms : timeline.horizon_ms;
    const double end_frac = static_cast<double>(effective_end - timeline.origin_ms) / span;
    const int begin_col = static_cast<int>(begin_frac * width);
    const int end_col = std::max(begin_col + 1, static_cast<int>(end_frac * width));

    std::string bar(static_cast<std::size_t>(width), ' ');
    for (int i = begin_col; i < std::min(end_col, width); ++i) {
      bar[static_cast<std::size_t>(i)] = '=';
    }
    char line[256];
    std::snprintf(line, sizeof line, "%*s%-*s |%s| %6lld ms\n", entry.depth * 2, "",
                  std::max(1, 36 - entry.depth * 2), entry.id.c_str(), bar.c_str(),
                  static_cast<long long>(entry.duration_ms()));
    out += line;
  }
  return out;
}

}  // namespace provml::explorer
