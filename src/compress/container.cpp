#include "provml/compress/container.hpp"

#include <cstring>

#include "provml/common/file_io.hpp"
#include "provml/compress/crc32.hpp"
#include "provml/compress/lzss.hpp"
#include "provml/compress/rle.hpp"
#include "provml/compress/varint.hpp"

namespace provml::compress {
namespace {

constexpr char kMagic[4] = {'P', 'M', 'L', 'C'};
constexpr std::uint8_t kVersion = 1;

struct Header {
  std::string codec;
  std::uint64_t raw_size = 0;
  std::uint64_t payload_size = 0;
  std::uint32_t crc = 0;
  std::size_t header_bytes = 0;
};

Expected<Header> parse_header(ByteView data) {
  if (data.size() < 6 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Error{"bad container magic", "container"};
  }
  if (data[4] != kVersion) return Error{"unsupported container version", "container"};
  const std::size_t name_len = data[5];
  std::size_t offset = 6;
  if (offset + name_len > data.size()) return Error{"truncated codec name", "container"};
  Header h;
  h.codec.assign(reinterpret_cast<const char*>(data.data()) + offset, name_len);
  offset += name_len;
  Expected<std::uint64_t> raw = varint_read(data, offset);
  if (!raw.ok()) return raw.error();
  Expected<std::uint64_t> stored = varint_read(data, offset);
  if (!stored.ok()) return stored.error();
  if (offset + 4 > data.size()) return Error{"truncated checksum", "container"};
  std::uint32_t crc = 0;
  std::memcpy(&crc, data.data() + offset, 4);
  offset += 4;
  h.raw_size = raw.value();
  h.payload_size = stored.value();
  h.crc = crc;
  h.header_bytes = offset;
  return h;
}

}  // namespace

CodecRegistry& CodecRegistry::global() {
  static CodecRegistry registry;  // not movable (owns a mutex): fill in place
  static const bool initialized = [] {
    registry.register_codec("raw", [] { return std::make_unique<IdentityCodec>(); });
    registry.register_codec("rle", [] { return std::make_unique<RleCodec>(); });
    registry.register_codec("lzss", [] { return std::make_unique<LzssCodec>(); });
    registry.register_codec("shuffle+lzss",
                            [] { return std::make_unique<ShuffleLzssCodec>(8); });
    return true;
  }();
  (void)initialized;
  return registry;
}

void CodecRegistry::register_codec(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

std::unique_ptr<Codec> CodecRegistry::create(const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;  // copy: run the factory outside the lock
  }
  return factory();
}

bool CodecRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::vector<std::string> CodecRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

Expected<Bytes> pack(ByteView payload, const std::string& codec_name,
                     const CodecRegistry& registry) {
  const std::unique_ptr<Codec> codec = registry.create(codec_name);
  if (!codec) return Error{"unknown codec: " + codec_name, "container"};
  if (codec_name.size() > 255) return Error{"codec name too long", "container"};

  const Bytes encoded = codec->encode(payload);
  Bytes out;
  out.reserve(encoded.size() + codec_name.size() + 24);
  out.insert(out.end(), kMagic, kMagic + 4);
  out.push_back(kVersion);
  out.push_back(static_cast<std::uint8_t>(codec_name.size()));
  out.insert(out.end(), codec_name.begin(), codec_name.end());
  varint_append(out, payload.size());
  varint_append(out, encoded.size());
  const std::uint32_t crc = crc32(payload);
  const auto* crc_bytes = reinterpret_cast<const std::uint8_t*>(&crc);
  out.insert(out.end(), crc_bytes, crc_bytes + 4);
  out.insert(out.end(), encoded.begin(), encoded.end());
  return out;
}

Expected<Bytes> unpack(ByteView container, const CodecRegistry& registry) {
  Expected<Header> header = parse_header(container);
  if (!header.ok()) return header.error();
  const Header& h = header.value();
  if (h.header_bytes + h.payload_size != container.size()) {
    return Error{"container payload size mismatch", "container"};
  }
  const std::unique_ptr<Codec> codec = registry.create(h.codec);
  if (!codec) return Error{"unknown codec: " + h.codec, "container"};
  Expected<Bytes> decoded =
      codec->decode(container.subspan(h.header_bytes), static_cast<std::size_t>(h.raw_size));
  if (!decoded.ok()) return decoded;
  if (crc32(decoded.value()) != h.crc) return Error{"checksum mismatch", "container"};
  return decoded;
}

Expected<ContainerInfo> inspect(ByteView container) {
  Expected<Header> header = parse_header(container);
  if (!header.ok()) return header.error();
  const Header& h = header.value();
  return ContainerInfo{h.codec, static_cast<std::size_t>(h.raw_size),
                       static_cast<std::size_t>(h.payload_size)};
}

Expected<Bytes> read_file_bytes(const std::string& path) {
  return io::read_file(path);
}

Status write_file_bytes(const std::string& path, ByteView data) {
  return io::write_file_atomic(path, data);
}

Status pack_file(const std::string& src_path, const std::string& dst_path,
                 const std::string& codec_name) {
  Expected<Bytes> data = read_file_bytes(src_path);
  if (!data.ok()) return data.error();
  Expected<Bytes> packed = pack(data.value(), codec_name);
  if (!packed.ok()) return packed.error();
  return write_file_bytes(dst_path, packed.value());
}

Expected<Bytes> unpack_file(const std::string& path) {
  Expected<Bytes> data = read_file_bytes(path);
  if (!data.ok()) return data;
  return unpack(data.value());
}

}  // namespace provml::compress
