#include "provml/compress/lzss.hpp"

#include <array>
#include <cstring>

#include "provml/common/fault_inject.hpp"

namespace provml::compress {
namespace {

constexpr std::size_t kWindowSize = 1u << 16;  // 64 KiB sliding window
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 258;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;
constexpr std::size_t kMaxChainLength = 64;  // match-finder effort bound
// Up-front allocation ceiling for decode: a plausible-but-huge declared
// size grows incrementally instead of reserving gigabytes at once.
constexpr std::size_t kReserveCap = std::size_t{1} << 26;  // 64 MiB

[[nodiscard]] inline std::uint32_t hash3(const std::uint8_t* p) {
  // Multiplicative hash of a 3-byte window.
  const std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                          (static_cast<std::uint32_t>(p[1]) << 8) |
                          (static_cast<std::uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

struct Match {
  std::size_t offset = 0;  // distance back from current position, 1-based
  std::size_t length = 0;
};

/// Hash-chain match finder over the sliding window.
class MatchFinder {
 public:
  explicit MatchFinder(ByteView data) : data_(data) {
    head_.fill(kNoPos);
    prev_.assign(data.size(), kNoPos);
  }

  void insert(std::size_t pos) {
    if (pos + kMinMatch > data_.size()) return;
    const std::uint32_t h = hash3(data_.data() + pos);
    prev_[pos] = head_[h];
    head_[h] = pos;
  }

  [[nodiscard]] Match find(std::size_t pos) const {
    Match best;
    if (pos + kMinMatch > data_.size()) return best;
    const std::size_t limit = std::min(kMaxMatch, data_.size() - pos);
    const std::uint32_t h = hash3(data_.data() + pos);
    std::size_t candidate = head_[h];
    std::size_t chain = 0;
    while (candidate != kNoPos && chain < kMaxChainLength) {
      if (pos - candidate > kWindowSize) break;  // chains are position-ordered
      const std::uint8_t* a = data_.data() + pos;
      const std::uint8_t* b = data_.data() + candidate;
      std::size_t len = 0;
      while (len < limit && a[len] == b[len]) ++len;
      if (len > best.length) {
        best.length = len;
        best.offset = pos - candidate;
        if (len == limit) break;
      }
      candidate = prev_[candidate];
      ++chain;
    }
    if (best.length < kMinMatch) best.length = 0;
    return best;
  }

 private:
  static constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

  ByteView data_;
  std::array<std::size_t, kHashSize> head_{};
  std::vector<std::size_t> prev_;
};

/// Accumulates tokens under the flag-byte framing.
class TokenWriter {
 public:
  explicit TokenWriter(Bytes& out) : out_(out) {}

  void literal(std::uint8_t byte) {
    begin_token(false);
    out_.push_back(byte);
  }

  void match(std::size_t offset, std::size_t length) {
    begin_token(true);
    out_.push_back(static_cast<std::uint8_t>(offset & 0xFF));
    out_.push_back(static_cast<std::uint8_t>((offset >> 8) & 0xFF));
    out_.push_back(static_cast<std::uint8_t>(length - kMinMatch));
  }

 private:
  void begin_token(bool is_match) {
    if (bit_ == 8) {
      flag_pos_ = out_.size();
      out_.push_back(0);
      bit_ = 0;
    }
    if (is_match) out_[flag_pos_] |= static_cast<std::uint8_t>(1u << bit_);
    ++bit_;
  }

  Bytes& out_;
  std::size_t flag_pos_ = 0;
  int bit_ = 8;
};

}  // namespace

Bytes LzssCodec::encode(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 16);
  TokenWriter writer(out);
  MatchFinder finder(input);

  std::size_t pos = 0;
  while (pos < input.size()) {
    Match m = finder.find(pos);
    if (m.length >= kMinMatch) {
      // One-step lazy evaluation: prefer a strictly longer match at pos+1.
      if (pos + 1 < input.size()) {
        finder.insert(pos);
        const Match next = finder.find(pos + 1);
        if (next.length > m.length + 1) {
          writer.literal(input[pos]);
          ++pos;
          continue;
        }
      } else {
        finder.insert(pos);
      }
      writer.match(m.offset, m.length);
      // First position was inserted above; add the rest of the match.
      for (std::size_t i = 1; i < m.length; ++i) finder.insert(pos + i);
      pos += m.length;
    } else {
      finder.insert(pos);
      writer.literal(input[pos]);
      ++pos;
    }
  }
  return out;
}

Expected<Bytes> LzssCodec::decode(ByteView input, std::size_t decoded_size) const {
  // `decoded_size` comes from an untrusted container header. A match token
  // (3 bytes + 1/8 flag byte) expands to at most kMaxMatch bytes, so any
  // claimed size beyond input*kMaxMatch is forged — reject it before
  // allocating, instead of letting a 16-byte file demand gigabytes.
  if (decoded_size > input.size() * kMaxMatch) {
    return Error{"declared size exceeds maximum expansion", "lzss"};
  }
  if (fault::triggered("compress.decode_alloc")) {
    return Error{"output allocation failed (injected fault)", "lzss"};
  }
  Bytes out;
  out.reserve(std::min(decoded_size, kReserveCap));
  std::size_t i = 0;
  std::uint8_t flags = 0;
  int bit = 8;
  while (out.size() < decoded_size) {
    if (bit == 8) {
      if (i >= input.size()) return Error{"truncated flag byte", "lzss"};
      flags = input[i++];
      bit = 0;
    }
    const bool is_match = (flags >> bit) & 1;
    ++bit;
    if (!is_match) {
      if (i >= input.size()) return Error{"truncated literal", "lzss"};
      out.push_back(input[i++]);
      continue;
    }
    if (i + 3 > input.size()) return Error{"truncated match token", "lzss"};
    const std::size_t offset = static_cast<std::size_t>(input[i]) |
                               (static_cast<std::size_t>(input[i + 1]) << 8);
    const std::size_t length = static_cast<std::size_t>(input[i + 2]) + kMinMatch;
    i += 3;
    if (offset == 0 || offset > out.size()) return Error{"match offset out of range", "lzss"};
    if (out.size() + length > decoded_size) return Error{"match overruns output", "lzss"};
    // Byte-by-byte copy: overlapping matches (offset < length) are legal.
    std::size_t src = out.size() - offset;
    for (std::size_t k = 0; k < length; ++k) out.push_back(out[src + k]);
  }
  return out;
}

Bytes shuffle_bytes(ByteView input, std::size_t element_size) {
  if (element_size <= 1) return Bytes(input.begin(), input.end());
  const std::size_t elements = input.size() / element_size;
  const std::size_t body = elements * element_size;
  Bytes out(input.size());
  for (std::size_t plane = 0; plane < element_size; ++plane) {
    for (std::size_t e = 0; e < elements; ++e) {
      out[plane * elements + e] = input[e * element_size + plane];
    }
  }
  std::memcpy(out.data() + body, input.data() + body, input.size() - body);
  return out;
}

Bytes unshuffle_bytes(ByteView input, std::size_t element_size) {
  if (element_size <= 1) return Bytes(input.begin(), input.end());
  const std::size_t elements = input.size() / element_size;
  const std::size_t body = elements * element_size;
  Bytes out(input.size());
  for (std::size_t plane = 0; plane < element_size; ++plane) {
    for (std::size_t e = 0; e < elements; ++e) {
      out[e * element_size + plane] = input[plane * elements + e];
    }
  }
  std::memcpy(out.data() + body, input.data() + body, input.size() - body);
  return out;
}

Bytes ShuffleLzssCodec::encode(ByteView input) const {
  const Bytes shuffled = shuffle_bytes(input, element_size_);
  return LzssCodec{}.encode(shuffled);
}

Expected<Bytes> ShuffleLzssCodec::decode(ByteView input, std::size_t decoded_size) const {
  Expected<Bytes> shuffled = LzssCodec{}.decode(input, decoded_size);
  if (!shuffled.ok()) return shuffled;
  return unshuffle_bytes(shuffled.value(), element_size_);
}

}  // namespace provml::compress
