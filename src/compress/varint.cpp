#include "provml/compress/varint.hpp"

namespace provml::compress {

void varint_append(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

Expected<std::uint64_t> varint_read(std::span<const std::uint8_t> bytes, std::size_t& offset) {
  std::uint64_t result = 0;
  int shift = 0;
  while (offset < bytes.size()) {
    const std::uint8_t byte = bytes[offset++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7F) > 1)) {
      return Error{"varint overflows 64 bits", "varint"};
    }
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
  return Error{"truncated varint", "varint"};
}

std::vector<std::int64_t> delta_encode(std::span<const std::int64_t> values) {
  std::vector<std::int64_t> out;
  out.reserve(values.size());
  std::int64_t prev = 0;
  for (const std::int64_t v : values) {
    // Unsigned subtraction: wraparound is intentional and reversible.
    out.push_back(static_cast<std::int64_t>(static_cast<std::uint64_t>(v) -
                                            static_cast<std::uint64_t>(prev)));
    prev = v;
  }
  return out;
}

std::vector<std::int64_t> delta_decode(std::span<const std::int64_t> deltas) {
  std::vector<std::int64_t> out;
  out.reserve(deltas.size());
  std::uint64_t acc = 0;
  for (const std::int64_t d : deltas) {
    acc += static_cast<std::uint64_t>(d);
    out.push_back(static_cast<std::int64_t>(acc));
  }
  return out;
}

std::vector<std::uint8_t> pack_i64(std::span<const std::int64_t> values) {
  std::vector<std::uint8_t> out;
  out.reserve(values.size() * 2);  // deltas of smooth series are short
  const std::vector<std::int64_t> deltas = delta_encode(values);
  for (const std::int64_t d : deltas) {
    varint_append(out, zigzag_encode(d));
  }
  return out;
}

Expected<std::vector<std::int64_t>> unpack_i64(std::span<const std::uint8_t> bytes,
                                               std::size_t count) {
  // Every varint occupies at least one byte, so an untrusted `count`
  // larger than the buffer cannot be satisfied — reject it before the
  // reserve below turns a forged header into a giant allocation.
  if (count > bytes.size()) {
    return Error{"declared count exceeds available bytes", "varint"};
  }
  std::vector<std::int64_t> deltas;
  deltas.reserve(count);
  std::size_t offset = 0;
  for (std::size_t i = 0; i < count; ++i) {
    Expected<std::uint64_t> v = varint_read(bytes, offset);
    if (!v.ok()) return v.error();
    deltas.push_back(zigzag_decode(v.value()));
  }
  if (offset != bytes.size()) {
    return Error{"trailing bytes after packed integers", "varint"};
  }
  return delta_decode(deltas);
}

}  // namespace provml::compress
