#include "provml/compress/crc32.hpp"

#include <array>

namespace provml::compress {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    }
    table[n] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) {
  std::uint32_t c = state ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = kTable[(c ^ byte) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) { return crc32_update(0, data); }

}  // namespace provml::compress
