// Byte-level run-length codec. Packet-based framing:
//   [ctrl] with ctrl < 0x80  → literal run of (ctrl + 1) bytes follows
//   [ctrl] with ctrl >= 0x80 → repeat next byte (ctrl - 0x80 + 2) times
// Effective on constant or stepwise series (epoch counters, device ids).
#pragma once

#include "provml/compress/codec.hpp"

namespace provml::compress {

class RleCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "rle"; }
  [[nodiscard]] Bytes encode(ByteView input) const override;
  [[nodiscard]] Expected<Bytes> decode(ByteView input, std::size_t decoded_size) const override;
};

}  // namespace provml::compress
