// Integer wire encodings used by the numeric codecs and binary stores:
// LEB128-style varints, zigzag mapping for signed values, and delta
// transforms over int64 sequences.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::compress {

/// Maps signed to unsigned so small-magnitude values get short varints.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Appends `v` as a base-128 varint (7 bits per byte, MSB = continuation).
void varint_append(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Reads one varint starting at `offset`, advancing it past the value.
[[nodiscard]] Expected<std::uint64_t> varint_read(std::span<const std::uint8_t> bytes,
                                                  std::size_t& offset);

/// Delta-encodes a sequence in place: out[i] = in[i] - in[i-1], out[0] = in[0].
[[nodiscard]] std::vector<std::int64_t> delta_encode(std::span<const std::int64_t> values);

/// Inverse of delta_encode (prefix sum).
[[nodiscard]] std::vector<std::int64_t> delta_decode(std::span<const std::int64_t> deltas);

/// Full pipeline for integer series: delta → zigzag → varint bytes.
[[nodiscard]] std::vector<std::uint8_t> pack_i64(std::span<const std::int64_t> values);

/// Inverse of pack_i64; `count` is the number of values expected.
[[nodiscard]] Expected<std::vector<std::int64_t>> unpack_i64(
    std::span<const std::uint8_t> bytes, std::size_t count);

}  // namespace provml::compress
