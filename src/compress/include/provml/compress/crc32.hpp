// CRC-32 (IEEE 802.3 polynomial, reflected) for container integrity checks.
#pragma once

#include <cstdint>
#include <span>

namespace provml::compress {

/// One-shot CRC-32 of `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// Incremental form: pass the previous return value as `state`
/// (start with 0) to checksum data in pieces.
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state,
                                         std::span<const std::uint8_t> data);

}  // namespace provml::compress
