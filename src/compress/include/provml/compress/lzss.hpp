// LZSS dictionary codec: 64 KiB sliding window, hash-chain match finder,
// greedy parse with one-byte lazy evaluation. Token stream framing:
//   flag byte (LSB-first, 8 tokens per flag): 0 = literal, 1 = match
//   literal: 1 raw byte
//   match:   2-byte little-endian offset (1-based), 1-byte length (len-3)
// Matches span [3, 258] bytes. This is the general-purpose compressor used
// for the "Compressed Size" column of Table 1 and the Zarr-like store.
#pragma once

#include "provml/compress/codec.hpp"

namespace provml::compress {

class LzssCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "lzss"; }
  [[nodiscard]] Bytes encode(ByteView input) const override;
  [[nodiscard]] Expected<Bytes> decode(ByteView input, std::size_t decoded_size) const override;
};

/// Byte-shuffle (Blosc-style) followed by LZSS. Transposes the byte planes
/// of fixed-width elements so slowly-varying high bytes of doubles become
/// long runs. `element_size` is fixed at construction (8 for f64 series).
class ShuffleLzssCodec final : public Codec {
 public:
  explicit ShuffleLzssCodec(std::size_t element_size = 8) : element_size_(element_size) {}

  [[nodiscard]] std::string name() const override { return "shuffle+lzss"; }
  [[nodiscard]] Bytes encode(ByteView input) const override;
  [[nodiscard]] Expected<Bytes> decode(ByteView input, std::size_t decoded_size) const override;

 private:
  std::size_t element_size_;
};

/// Transposes `input` viewed as rows of `element_size` bytes; the tail that
/// does not fill a whole element is appended unshuffled.
[[nodiscard]] Bytes shuffle_bytes(ByteView input, std::size_t element_size);
[[nodiscard]] Bytes unshuffle_bytes(ByteView input, std::size_t element_size);

}  // namespace provml::compress
