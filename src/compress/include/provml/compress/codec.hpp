// Byte-stream codec interface and registry. Codecs compress the chunk
// payloads of the Zarr-like store and whole provenance files (the
// "Compressed Size" column of the paper's Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::compress {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// A reversible byte-stream transform. Implementations must satisfy
/// decode(encode(x)) == x for every input x (verified by property tests).
class Codec {
 public:
  virtual ~Codec() = default;

  /// Stable identifier stored in container headers and Zarr metadata.
  [[nodiscard]] virtual std::string name() const = 0;

  [[nodiscard]] virtual Bytes encode(ByteView input) const = 0;

  /// `decoded_size` is the exact size recorded at encode time; codecs may
  /// use it to pre-allocate and to validate stream integrity.
  [[nodiscard]] virtual Expected<Bytes> decode(ByteView input,
                                               std::size_t decoded_size) const = 0;
};

/// Pass-through codec ("raw"). Useful as a baseline and for stores
/// configured without compression.
class IdentityCodec final : public Codec {
 public:
  [[nodiscard]] std::string name() const override { return "raw"; }
  [[nodiscard]] Bytes encode(ByteView input) const override {
    return Bytes(input.begin(), input.end());
  }
  [[nodiscard]] Expected<Bytes> decode(ByteView input, std::size_t decoded_size) const override {
    if (input.size() != decoded_size) {
      return Error{"raw codec size mismatch", "identity"};
    }
    return Bytes(input.begin(), input.end());
  }
};

/// Name → factory registry. The built-in codecs ("raw", "rle", "lzss",
/// "shuffle+lzss") are pre-registered; plugins may add more. Thread-safe:
/// encode workers in the streaming write path create codecs concurrently.
class CodecRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Codec>()>;

  /// The process-wide registry with built-ins installed.
  static CodecRegistry& global();

  void register_codec(const std::string& name, Factory factory);
  [[nodiscard]] std::unique_ptr<Codec> create(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

}  // namespace provml::compress
