// Self-describing compressed container. Layout (little-endian):
//   magic   "PMLC" (4 bytes)
//   version u8 (currently 1)
//   codec   u8 name length, then name bytes
//   raw_size     varint (decoded payload size)
//   payload_size varint (encoded payload size)
//   crc32   u32 of the *decoded* payload
//   payload bytes
// Used for ".json + compressed" measurements (Table 1) and for any artifact
// that must carry its codec with it.
#pragma once

#include <string>

#include "provml/compress/codec.hpp"

namespace provml::compress {

struct ContainerInfo {
  std::string codec;
  std::size_t raw_size = 0;
  std::size_t stored_size = 0;  ///< encoded payload bytes, excludes header
};

/// Encodes `payload` with the named codec (looked up in `registry`) and
/// wraps it in a container frame.
[[nodiscard]] Expected<Bytes> pack(ByteView payload, const std::string& codec_name,
                                   const CodecRegistry& registry = CodecRegistry::global());

/// Validates the frame + CRC and returns the decoded payload.
[[nodiscard]] Expected<Bytes> unpack(ByteView container,
                                     const CodecRegistry& registry = CodecRegistry::global());

/// Reads only the header (cheap size/codec inspection without decoding).
[[nodiscard]] Expected<ContainerInfo> inspect(ByteView container);

/// Convenience: pack bytes to a file / unpack a file to bytes.
[[nodiscard]] Status pack_file(const std::string& src_path, const std::string& dst_path,
                               const std::string& codec_name);
[[nodiscard]] Expected<Bytes> unpack_file(const std::string& path);

/// Reads a whole file into memory (shared helper for stores and the CLI).
[[nodiscard]] Expected<Bytes> read_file_bytes(const std::string& path);
/// Writes bytes to a file, truncating.
[[nodiscard]] Status write_file_bytes(const std::string& path, ByteView data);

}  // namespace provml::compress
