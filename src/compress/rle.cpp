#include "provml/compress/rle.hpp"

#include "provml/common/fault_inject.hpp"

namespace provml::compress {

namespace {
constexpr std::size_t kMaxLiteralRun = 0x80;        // ctrl 0x00..0x7F → 1..128
constexpr std::size_t kMaxRepeatRun = 0x7F + 2;     // ctrl 0x80..0xFF → 2..129
constexpr std::size_t kMinRepeat = 3;               // below this, literals win
constexpr std::size_t kReserveCap = std::size_t{1} << 26;  // see lzss.cpp
}  // namespace

Bytes RleCodec::encode(ByteView input) const {
  Bytes out;
  out.reserve(input.size() / 2 + 8);
  std::size_t i = 0;
  while (i < input.size()) {
    // Measure the run of identical bytes starting at i.
    std::size_t run = 1;
    while (i + run < input.size() && input[i + run] == input[i] && run < kMaxRepeatRun) {
      ++run;
    }
    if (run >= kMinRepeat) {
      out.push_back(static_cast<std::uint8_t>(0x80 + (run - 2)));
      out.push_back(input[i]);
      i += run;
      continue;
    }
    // Collect literals until the next worthwhile repeat run.
    const std::size_t literal_start = i;
    std::size_t literal_len = 0;
    while (i < input.size() && literal_len < kMaxLiteralRun) {
      std::size_t ahead = 1;
      while (i + ahead < input.size() && input[i + ahead] == input[i] && ahead < kMinRepeat) {
        ++ahead;
      }
      if (ahead >= kMinRepeat) break;  // a repeat run begins here
      i += ahead;
      literal_len += ahead;
      if (literal_len > kMaxLiteralRun) {
        // Clamp to the packet limit; the loop re-enters for the rest.
        i -= literal_len - kMaxLiteralRun;
        literal_len = kMaxLiteralRun;
      }
    }
    out.push_back(static_cast<std::uint8_t>(literal_len - 1));
    out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(literal_start),
               input.begin() + static_cast<std::ptrdiff_t>(literal_start + literal_len));
  }
  return out;
}

Expected<Bytes> RleCodec::decode(ByteView input, std::size_t decoded_size) const {
  // Untrusted declared size: a 2-byte repeat packet expands to at most
  // kMaxRepeatRun bytes, so anything beyond input*kMaxRepeatRun is forged.
  if (decoded_size > input.size() * kMaxRepeatRun) {
    return Error{"declared size exceeds maximum expansion", "rle"};
  }
  if (fault::triggered("compress.decode_alloc")) {
    return Error{"output allocation failed (injected fault)", "rle"};
  }
  Bytes out;
  out.reserve(std::min(decoded_size, kReserveCap));
  std::size_t i = 0;
  while (i < input.size()) {
    const std::uint8_t ctrl = input[i++];
    if (ctrl < 0x80) {
      const std::size_t len = static_cast<std::size_t>(ctrl) + 1;
      if (i + len > input.size()) return Error{"truncated literal run", "rle"};
      out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                 input.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else {
      if (i >= input.size()) return Error{"truncated repeat run", "rle"};
      const std::size_t len = static_cast<std::size_t>(ctrl - 0x80) + 2;
      out.insert(out.end(), len, input[i++]);
    }
    if (out.size() > decoded_size) return Error{"output exceeds declared size", "rle"};
  }
  if (out.size() != decoded_size) return Error{"output shorter than declared size", "rle"};
  return out;
}

}  // namespace provml::compress
