// Streaming metric write path: open a sink, append samples as training
// produces them, seal on finish. This is the primitive the batch
// MetricStore::write() is built on — batch is just "declare every series,
// append every sample, seal" — so streaming and batch writes produce
// byte-identical stores by construction.
//
// Durability contract (SinkOptions::durable):
//   * Chunked stores (zarr) publish every completed chunk with
//     write_file_atomic and then refresh their metadata, so a process
//     killed mid-run leaves a store whose sealed prefix reads back.
//   * Single-file stores (json, netcdf) cannot append durably; they
//     buffer in the sink and publish one atomic file at seal(). A crash
//     before seal() loses the metrics but never leaves a torn file.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "provml/common/expected.hpp"
#include "provml/storage/series.hpp"

namespace provml::common {
class ThreadPool;
}  // namespace provml::common

namespace provml::storage {

struct SinkOptions {
  /// Publish completed chunks + metadata incrementally so a killed run
  /// leaves a readable prefix. Only meaningful for chunked stores; batch
  /// MetricStore::write() keeps it off so a failed overwrite never
  /// exposes a half-new store (the final metadata write stays the commit
  /// point, as before).
  bool durable = false;

  /// Worker pool for parallel chunk encoding in chunked stores.
  /// nullptr selects common::ThreadPool::shared().
  common::ThreadPool* encode_pool = nullptr;

  /// Chunked stores: samples per on-disk chunk, overriding the store's
  /// configured default (0 keeps the default). The streaming run path sets
  /// this to its flush granularity so durability advances with each flush
  /// instead of waiting for the store's (much larger) batch chunk size.
  std::size_t chunk_length = 0;

  /// Encode chunk payloads on the calling thread instead of the pool.
  /// The single-threaded baseline for the streaming ablation, and the
  /// right choice for small writes where pool handoff outweighs overlap.
  bool inline_encode = false;
};

/// Append-oriented writer for one store file/directory. Not thread-safe:
/// exactly one thread (the caller, or the run's background flusher) drives
/// a sink. Sinks own any partially written on-disk state until seal().
class MetricSink {
 public:
  virtual ~MetricSink() = default;

  /// Registers a series and returns its dense id for appends. Declaring
  /// the same (name, context) again returns the existing id (and fills in
  /// a previously empty unit, mirroring MetricSet::series). Declaration
  /// order is the on-store series order.
  [[nodiscard]] virtual Expected<std::size_t> declare_series(const std::string& name,
                                                             const std::string& context,
                                                             const std::string& unit) = 0;

  /// Appends one sample to a declared series.
  [[nodiscard]] virtual Status append(std::size_t series, const MetricSample& sample) = 0;

  /// Bulk append; default loops over append().
  [[nodiscard]] virtual Status append_block(std::size_t series, const MetricSample* samples,
                                            std::size_t count);

  /// Pushes completed work to disk where the format allows it (chunked
  /// stores write pending chunks and refresh metadata when durable).
  /// No-op for buffering sinks.
  [[nodiscard]] virtual Status flush() = 0;

  /// Writes remaining data and final metadata; the sink accepts no
  /// appends afterwards. Idempotent.
  [[nodiscard]] virtual Status seal() = 0;
};

/// Buffering sink for single-file formats: accumulates a MetricSet in
/// memory and hands it to `writer` (the format's batch serializer) at
/// seal(). Guarantees byte-identical batch/streaming output trivially —
/// both funnel through the same serializer with the same series order.
class BufferedMetricSink final : public MetricSink {
 public:
  using Writer = std::function<Status(const MetricSet&, const std::string&)>;

  BufferedMetricSink(std::string path, Writer writer)
      : path_(std::move(path)), writer_(std::move(writer)) {}

  [[nodiscard]] Expected<std::size_t> declare_series(const std::string& name,
                                                     const std::string& context,
                                                     const std::string& unit) override;
  [[nodiscard]] Status append(std::size_t series, const MetricSample& sample) override;
  [[nodiscard]] Status append_block(std::size_t series, const MetricSample* samples,
                                    std::size_t count) override;
  [[nodiscard]] Status flush() override { return Status::ok_status(); }
  [[nodiscard]] Status seal() override;

 private:
  std::string path_;
  Writer writer_;
  MetricSet set_;
  std::vector<MetricSeries*> by_id_;  // dense id → series (stable: heap-backed)
  bool sealed_ = false;
};

}  // namespace provml::storage
