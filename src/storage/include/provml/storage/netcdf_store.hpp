// NetCDF-classic-like single-file columnar binary store. Layout:
//   magic "PNC1"
//   global attrs:  count, then (name, value) string pairs
//   variable list: count, then per series
//     name, context, unit (length-prefixed strings)
//     sample count (varint)
//     step column      : i64 delta+zigzag+varint, lzss (container frame)
//     timestamp column : same as step column
//     value column     : f64 compressed with shuffle+lzss (container frame)
// Values are compressed *inside* the file, mirroring NetCDF-4's built-in
// deflate — which is why the paper's Table 1 shows almost no gain from
// externally compressing the .nc file (2.35 MB → 2.30 MB).
#pragma once

#include "provml/storage/store.hpp"

namespace provml::storage {

class NetcdfMetricStore final : public MetricStore {
 public:
  [[nodiscard]] std::string format_name() const override { return "netcdf"; }
  [[nodiscard]] std::string path_suffix() const override { return ".nc"; }
  [[nodiscard]] Expected<std::unique_ptr<MetricSink>> open_sink(
      const std::string& path, const SinkOptions& options = {}) const override;
  [[nodiscard]] Expected<MetricSet> read(const std::string& path) const override;

  /// Global attributes written into the file header.
  void set_attribute(const std::string& key, const std::string& value) {
    attributes_.emplace_back(key, value);
  }
  [[nodiscard]] static Expected<std::vector<std::pair<std::string, std::string>>>
  read_attributes(const std::string& path);

 private:
  std::vector<std::pair<std::string, std::string>> attributes_;
};

}  // namespace provml::storage
