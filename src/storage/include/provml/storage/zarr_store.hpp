// Zarr-like chunked directory store. Layout (mirrors Zarr v2 in spirit):
//   <root>/.zgroup                     {"zarr_format": 2}
//   <root>/.zattrs                     {"series": [ {name, context, unit}... ]}
//   <root>/<series-key>/<column>/.zarray   metadata: shape, chunks, dtype,
//                                          compressor, filter
//   <root>/<series-key>/<column>/<n>       chunk files, container-framed
// Columns per series: "step" (i64), "timestamp" (i64), "value" (f64).
// Integer columns pass through delta+zigzag+varint before the codec; value
// columns use the codec directly (shuffle+lzss by default).
#pragma once

#include "provml/storage/store.hpp"

namespace provml::storage {

struct ZarrOptions {
  std::size_t chunk_length = 4096;        ///< samples per chunk
  std::string codec = "shuffle+lzss";     ///< codec for f64 columns
  std::string int_codec = "lzss";         ///< codec applied after varint packing
  bool compress = true;                   ///< false = "raw" codec everywhere
};

class ZarrMetricStore final : public MetricStore {
 public:
  explicit ZarrMetricStore(ZarrOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string format_name() const override { return "zarr"; }
  [[nodiscard]] std::string path_suffix() const override { return ".zarr"; }

  /// Chunked streaming sink. Chunk payloads are encoded on the worker pool
  /// (SinkOptions::encode_pool, default the shared pool) and written in
  /// order via write_file_atomic. With SinkOptions::durable the sink also
  /// refreshes .zarray/.zattrs after every batch of completed chunks, so a
  /// killed process leaves a readable sample prefix; without it the final
  /// .zattrs written at seal() stays the all-or-nothing commit point.
  [[nodiscard]] Expected<std::unique_ptr<MetricSink>> open_sink(
      const std::string& path, const SinkOptions& options = {}) const override;

  /// Tolerates a crashed streaming writer: a missing tail chunk or a
  /// series listing ahead of the chunks on disk truncates the result to
  /// the longest complete prefix instead of erroring. Corrupt chunk
  /// *content* still fails (CRC/size checks), so bitrot is never
  /// silently shortened away.
  [[nodiscard]] Expected<MetricSet> read(const std::string& path) const override;

  /// Partial read — the reason chunked stores exist: loads exactly one
  /// series (all its chunks, nothing else) without touching the other
  /// series' files.
  [[nodiscard]] Expected<MetricSeries> read_series(const std::string& path,
                                                   const std::string& name,
                                                   const std::string& context) const;

  /// Series listing (name, context) pairs from .zattrs, without data I/O.
  [[nodiscard]] Expected<std::vector<std::pair<std::string, std::string>>> list_series(
      const std::string& path) const;

 private:
  ZarrOptions options_;
};

}  // namespace provml::storage
