// Zarr-like chunked directory store. Layout (mirrors Zarr v2 in spirit):
//   <root>/.zgroup                     {"zarr_format": 2}
//   <root>/.zattrs                     {"series": [ {name, context, unit}... ]}
//   <root>/<series-key>/<column>/.zarray   metadata: shape, chunks, dtype,
//                                          compressor, filter
//   <root>/<series-key>/<column>/<n>       chunk files, container-framed
// Columns per series: "step" (i64), "timestamp" (i64), "value" (f64).
// Integer columns pass through delta+zigzag+varint before the codec; value
// columns use the codec directly (shuffle+lzss by default).
#pragma once

#include "provml/storage/store.hpp"

namespace provml::storage {

struct ZarrOptions {
  std::size_t chunk_length = 4096;        ///< samples per chunk
  std::string codec = "shuffle+lzss";     ///< codec for f64 columns
  std::string int_codec = "lzss";         ///< codec applied after varint packing
  bool compress = true;                   ///< false = "raw" codec everywhere
};

class ZarrMetricStore final : public MetricStore {
 public:
  explicit ZarrMetricStore(ZarrOptions options = {}) : options_(options) {}

  [[nodiscard]] std::string format_name() const override { return "zarr"; }
  [[nodiscard]] std::string path_suffix() const override { return ".zarr"; }
  [[nodiscard]] Status write(const MetricSet& metrics, const std::string& path) const override;
  [[nodiscard]] Expected<MetricSet> read(const std::string& path) const override;

  /// Partial read — the reason chunked stores exist: loads exactly one
  /// series (all its chunks, nothing else) without touching the other
  /// series' files.
  [[nodiscard]] Expected<MetricSeries> read_series(const std::string& path,
                                                   const std::string& name,
                                                   const std::string& context) const;

  /// Series listing (name, context) pairs from .zattrs, without data I/O.
  [[nodiscard]] Expected<std::vector<std::pair<std::string, std::string>>> list_series(
      const std::string& path) const;

 private:
  ZarrOptions options_;
};

}  // namespace provml::storage
