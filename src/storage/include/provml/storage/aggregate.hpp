// Metric-series aggregation: summary statistics and downsampling. The
// explorer and the yProv Explorer front-end never plot raw 100k-sample
// series; they ask for summaries and bounded-size resamples of the stored
// data ("metrics ... updated during the training process").
#pragma once

#include <cstddef>

#include "provml/common/expected.hpp"
#include "provml/storage/series.hpp"

namespace provml::storage {

struct SeriesSummary {
  std::size_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;  ///< population standard deviation
  double first = 0;
  double last = 0;
  std::int64_t first_step = 0;
  std::int64_t last_step = 0;
  std::int64_t duration_ms = 0;  ///< last timestamp − first timestamp
};

/// Summary statistics over a series (count == 0 for an empty series).
[[nodiscard]] SeriesSummary summarize(const MetricSeries& series);

/// Downsamples to at most `max_points` samples by bucket-mean: samples are
/// split into equal-count buckets; each bucket contributes one sample with
/// the mean value and the bucket's central step/timestamp. Series at or
/// under the budget are returned unchanged.
[[nodiscard]] MetricSeries downsample(const MetricSeries& series, std::size_t max_points);

/// Linear-regression slope of value over step (per-step trend); 0 when
/// fewer than two samples or constant steps. Used by convergence checks.
[[nodiscard]] double trend_per_step(const MetricSeries& series);

/// Value area under the curve over *time* (trapezoid on timestamps), e.g.
/// energy from a power series. Units: value-units × seconds.
[[nodiscard]] double integrate_over_time(const MetricSeries& series);

/// Plot-ready CSV of a whole metric set:
///   series,context,unit,step,timestamp_ms,value
/// Values use shortest round-trip formatting; fields containing commas or
/// quotes are quoted per RFC 4180.
[[nodiscard]] std::string to_csv(const MetricSet& metrics);

/// Writes to_csv() to a file.
[[nodiscard]] Status write_csv(const MetricSet& metrics, const std::string& path);

}  // namespace provml::storage
