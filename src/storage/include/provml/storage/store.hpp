// Pluggable metric-store back-ends. A store serializes a MetricSet to a
// path (file or directory, format-dependent) and reads it back. The three
// built-ins reproduce the formats compared in the paper's Table 1:
//   "json"   — metrics embedded in a JSON document (the 39.82 MB baseline)
//   "zarr"   — chunked, compressed directory store (Zarr-v2-like layout)
//   "netcdf" — single-file columnar binary (NetCDF-classic-like)
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "provml/common/expected.hpp"
#include "provml/storage/series.hpp"
#include "provml/storage/sink.hpp"

namespace provml::storage {

class MetricStore {
 public:
  virtual ~MetricStore() = default;

  /// Stable format identifier ("json", "zarr", "netcdf").
  [[nodiscard]] virtual std::string format_name() const = 0;

  /// Conventional path suffix for this format (".json", ".zarr", ".nc").
  [[nodiscard]] virtual std::string path_suffix() const = 0;

  /// Opens a streaming sink targeting `path` (created/overwritten at
  /// seal for single-file formats, at open for directory formats).
  [[nodiscard]] virtual Expected<std::unique_ptr<MetricSink>> open_sink(
      const std::string& path, const SinkOptions& options = {}) const = 0;

  /// Serializes `metrics` to `path` (created/overwritten). Implemented on
  /// top of open_sink(): declare every series, append every sample, seal.
  /// Streaming the same samples through a sink therefore produces a
  /// byte-identical store.
  [[nodiscard]] virtual Status write(const MetricSet& metrics,
                                     const std::string& path) const;

  /// Reads a MetricSet previously written by this store.
  [[nodiscard]] virtual Expected<MetricSet> read(const std::string& path) const = 0;

  /// Total on-disk footprint in bytes (sums directory contents for
  /// directory-based formats).
  [[nodiscard]] virtual Expected<std::uint64_t> size_on_disk(const std::string& path) const;
};

/// Name → factory registry mirroring compress::CodecRegistry. The built-in
/// stores are pre-registered in global(); plugins may add more. Thread-safe:
/// worker threads (the run flusher, server handlers) create stores
/// concurrently with registration.
class StoreRegistry {
 public:
  using Factory = std::function<std::unique_ptr<MetricStore>()>;

  static StoreRegistry& global();

  void register_store(const std::string& name, Factory factory);
  [[nodiscard]] std::unique_ptr<MetricStore> create(const std::string& name) const;
  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory> factories_;
};

/// Recursive byte size of a file or directory tree.
[[nodiscard]] Expected<std::uint64_t> path_size_bytes(const std::string& path);

}  // namespace provml::storage
