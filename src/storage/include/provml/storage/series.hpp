// Metric time-series model. yProv4ML separates bulky per-step metric data
// from the top-level PROV-JSON document; this is the in-memory form that the
// JSON-embedded, Zarr-like, and NetCDF-like stores serialize.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::storage {

/// One logged observation of a metric.
struct MetricSample {
  std::int64_t step = 0;          ///< training step / iteration
  std::int64_t timestamp_ms = 0;  ///< epoch milliseconds at log time
  double value = 0.0;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// A named metric stream within one context (e.g. "loss" in "TRAINING").
struct MetricSeries {
  std::string name;
  std::string context;  ///< TRAINING / VALIDATION / TESTING / user-defined
  std::string unit;     ///< free-form, e.g. "J", "W", "%"
  std::vector<MetricSample> samples;

  void append(std::int64_t step, std::int64_t timestamp_ms, double value) {
    samples.push_back({step, timestamp_ms, value});
  }

  [[nodiscard]] std::size_t size() const { return samples.size(); }

  /// Key used by stores and lookups: "context/name".
  [[nodiscard]] std::string key() const { return context + "/" + name; }

  friend bool operator==(const MetricSeries&, const MetricSeries&) = default;
};

/// An ordered collection of series, unique by (context, name).
/// References returned by series() remain valid for the MetricSet's
/// lifetime (series are heap-allocated), so callers such as the run logger
/// can cache them across subsequent insertions.
class MetricSet {
 public:
  MetricSet() = default;
  MetricSet(const MetricSet& other) { *this = other; }
  MetricSet& operator=(const MetricSet& other);
  MetricSet(MetricSet&&) noexcept = default;
  MetricSet& operator=(MetricSet&&) noexcept = default;

  /// Returns the series for (name, context), creating it if absent.
  MetricSeries& series(const std::string& name, const std::string& context,
                       const std::string& unit = "");

  [[nodiscard]] const MetricSeries* find(const std::string& name,
                                         const std::string& context) const;

  /// Iterates series in insertion order.
  class ConstView {
   public:
    explicit ConstView(const std::vector<std::unique_ptr<MetricSeries>>& v) : v_(v) {}
    struct Iterator {
      const std::unique_ptr<MetricSeries>* p;
      const MetricSeries& operator*() const { return **p; }
      Iterator& operator++() { ++p; return *this; }
      bool operator!=(const Iterator& o) const { return p != o.p; }
    };
    [[nodiscard]] Iterator begin() const { return {v_.data()}; }
    [[nodiscard]] Iterator end() const { return {v_.data() + v_.size()}; }
    [[nodiscard]] std::size_t size() const { return v_.size(); }
    const MetricSeries& operator[](std::size_t i) const { return *v_[i]; }

   private:
    const std::vector<std::unique_ptr<MetricSeries>>& v_;
  };

  [[nodiscard]] ConstView all() const { return ConstView{series_}; }
  [[nodiscard]] std::size_t size() const { return series_.size(); }
  [[nodiscard]] bool empty() const { return series_.empty(); }

  /// Total samples across all series.
  [[nodiscard]] std::size_t total_samples() const;

  friend bool operator==(const MetricSet& a, const MetricSet& b);

 private:
  std::vector<std::unique_ptr<MetricSeries>> series_;
};

}  // namespace provml::storage
