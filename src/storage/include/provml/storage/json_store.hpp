// JSON-embedded metric store: every sample is rendered as JSON text. This
// is the paper's baseline layout ("Original_file.json") whose size the
// optimized formats are compared against in Table 1.
#pragma once

#include "provml/json/value.hpp"
#include "provml/storage/store.hpp"

namespace provml::storage {

class JsonMetricStore final : public MetricStore {
 public:
  /// `pretty` controls indentation; the paper's files are pretty-printed.
  explicit JsonMetricStore(bool pretty = true) : pretty_(pretty) {}

  [[nodiscard]] std::string format_name() const override { return "json"; }
  [[nodiscard]] std::string path_suffix() const override { return ".json"; }
  [[nodiscard]] Expected<std::unique_ptr<MetricSink>> open_sink(
      const std::string& path, const SinkOptions& options = {}) const override;
  [[nodiscard]] Expected<MetricSet> read(const std::string& path) const override;

 private:
  bool pretty_;
};

/// Conversion helpers shared with the core logger (which embeds metric
/// payloads into the run's PROV-JSON document when no external store is
/// configured).
[[nodiscard]] json::Value metric_set_to_json(const MetricSet& metrics);
[[nodiscard]] Expected<MetricSet> metric_set_from_json(const json::Value& value);

}  // namespace provml::storage
