#include "provml/storage/json_store.hpp"

#include "provml/json/parse.hpp"
#include "provml/json/write.hpp"

namespace provml::storage {

json::Value metric_set_to_json(const MetricSet& metrics) {
  json::Array series_array;
  for (const MetricSeries& s : metrics.all()) {
    json::Object entry;
    entry.set("name", s.name);
    entry.set("context", s.context);
    entry.set("unit", s.unit);
    // One JSON object per sample — deliberately the naive layout the paper
    // measures as the uncompressed baseline.
    json::Array samples;
    samples.reserve(s.samples.size());
    for (const MetricSample& sample : s.samples) {
      json::Object rec;
      rec.set("step", sample.step);
      rec.set("time", sample.timestamp_ms);
      rec.set("value", sample.value);
      samples.push_back(std::move(rec));
    }
    entry.set("samples", std::move(samples));
    series_array.push_back(std::move(entry));
  }
  json::Object root;
  root.set("series", std::move(series_array));
  return root;
}

Expected<MetricSet> metric_set_from_json(const json::Value& value) {
  const json::Value* series_array = value.find("series");
  if (series_array == nullptr || !series_array->is_array()) {
    return Error{"missing 'series' array", "json-store"};
  }
  MetricSet out;
  for (const json::Value& entry : series_array->as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* context = entry.find("context");
    const json::Value* samples = entry.find("samples");
    if (name == nullptr || !name->is_string() || context == nullptr ||
        !context->is_string() || samples == nullptr || !samples->is_array()) {
      return Error{"malformed series entry", "json-store"};
    }
    const json::Value* unit = entry.find("unit");
    MetricSeries& s = out.series(name->as_string(), context->as_string(),
                                 unit != nullptr && unit->is_string() ? unit->as_string() : "");
    for (const json::Value& rec : samples->as_array()) {
      const json::Value* step = rec.find("step");
      const json::Value* time = rec.find("time");
      const json::Value* val = rec.find("value");
      if (step == nullptr || !step->is_int() || time == nullptr || !time->is_int() ||
          val == nullptr || !val->is_number()) {
        return Error{"malformed sample in series '" + s.name + "'", "json-store"};
      }
      s.append(step->as_int(), time->as_int(), val->as_double());
    }
  }
  return out;
}

Expected<std::unique_ptr<MetricSink>> JsonMetricStore::open_sink(
    const std::string& path, const SinkOptions& /*options*/) const {
  // Single-file format: buffer and publish one atomic file at seal.
  const bool pretty = pretty_;
  return std::unique_ptr<MetricSink>(new BufferedMetricSink(
      path, [pretty](const MetricSet& metrics, const std::string& dst) {
        json::WriteOptions opts;
        opts.pretty = pretty;
        return json::write_file(dst, metric_set_to_json(metrics), opts);
      }));
}

Expected<MetricSet> JsonMetricStore::read(const std::string& path) const {
  Expected<json::Value> v = json::parse_file(path);
  if (!v.ok()) return v.error();
  return metric_set_from_json(v.value());
}

}  // namespace provml::storage
