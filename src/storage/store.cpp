#include "provml/storage/store.hpp"

#include <filesystem>

#include "provml/storage/json_store.hpp"
#include "provml/storage/netcdf_store.hpp"
#include "provml/storage/zarr_store.hpp"

namespace provml::storage {

Expected<std::uint64_t> path_size_bytes(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::file_status status = fs::status(path, ec);
  if (ec) return Error{"cannot stat path: " + ec.message(), path};
  if (fs::is_regular_file(status)) {
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) return Error{"cannot read file size: " + ec.message(), path};
    return static_cast<std::uint64_t>(size);
  }
  if (!fs::is_directory(status)) return Error{"not a file or directory", path};
  std::uint64_t total = 0;
  for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
    if (entry.is_regular_file(ec)) {
      total += static_cast<std::uint64_t>(entry.file_size(ec));
    }
  }
  if (ec) return Error{"directory walk failed: " + ec.message(), path};
  return total;
}

Expected<std::uint64_t> MetricStore::size_on_disk(const std::string& path) const {
  return path_size_bytes(path);
}

Status MetricStore::write(const MetricSet& metrics, const std::string& path) const {
  Expected<std::unique_ptr<MetricSink>> sink = open_sink(path);
  if (!sink.ok()) return sink.error();
  for (const MetricSeries& series : metrics.all()) {
    Expected<std::size_t> id =
        sink.value()->declare_series(series.name, series.context, series.unit);
    if (!id.ok()) return id.error();
    Status s = sink.value()->append_block(id.value(), series.samples.data(),
                                          series.samples.size());
    if (!s.ok()) return s;
  }
  return sink.value()->seal();
}

StoreRegistry& StoreRegistry::global() {
  static StoreRegistry registry;  // not movable (owns a mutex): fill in place
  static const bool initialized = [] {
    registry.register_store("json", [] { return std::make_unique<JsonMetricStore>(); });
    registry.register_store("zarr", [] { return std::make_unique<ZarrMetricStore>(); });
    registry.register_store("netcdf",
                            [] { return std::make_unique<NetcdfMetricStore>(); });
    return true;
  }();
  (void)initialized;
  return registry;
}

void StoreRegistry::register_store(const std::string& name, Factory factory) {
  const std::lock_guard<std::mutex> lock(mutex_);
  factories_[name] = std::move(factory);
}

std::unique_ptr<MetricStore> StoreRegistry::create(const std::string& name) const {
  Factory factory;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(name);
    if (it == factories_.end()) return nullptr;
    factory = it->second;  // copy: run the factory outside the lock
  }
  return factory();
}

bool StoreRegistry::contains(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return factories_.count(name) != 0;
}

std::vector<std::string> StoreRegistry::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

}  // namespace provml::storage
