#include "provml/storage/zarr_store.hpp"

#include <cctype>
#include <cstring>
#include <filesystem>

#include "provml/compress/container.hpp"
#include "provml/compress/varint.hpp"
#include "provml/json/parse.hpp"
#include "provml/json/write.hpp"
#include "provml/storage/json_store.hpp"

namespace provml::storage {
namespace {

namespace fs = std::filesystem;
using compress::Bytes;

constexpr const char* kColumns[3] = {"step", "timestamp", "value"};
constexpr const char* kIntFilter = "delta-varint";

std::string sanitize_dir(std::size_t index, const MetricSeries& s) {
  std::string out = "s" + std::to_string(index) + "_";
  for (const char c : s.key()) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' || c == '-')
               ? c
               : '_';
  }
  return out;
}

/// Extracts one column of a series as raw bytes ready for the codec chain.
Bytes column_chunk_bytes(const MetricSeries& s, int column, std::size_t begin,
                         std::size_t end) {
  if (column == 2) {  // f64 values, little-endian memcpy
    Bytes out((end - begin) * sizeof(double));
    for (std::size_t i = begin; i < end; ++i) {
      std::memcpy(out.data() + (i - begin) * sizeof(double), &s.samples[i].value,
                  sizeof(double));
    }
    return out;
  }
  std::vector<std::int64_t> values;
  values.reserve(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    values.push_back(column == 0 ? s.samples[i].step : s.samples[i].timestamp_ms);
  }
  return compress::pack_i64(values);
}

Status restore_column(MetricSeries& s, int column, std::size_t begin, std::size_t count,
                      const Bytes& raw) {
  if (column == 2) {
    // Division form: `count * sizeof(double)` would wrap for a forged count.
    if (raw.size() % sizeof(double) != 0 || raw.size() / sizeof(double) != count) {
      return Error{"value chunk size mismatch", s.key()};
    }
    // Grow only after the chunk's real byte count validated `count`, so the
    // listing's declared length can never force a huge allocation by itself.
    if (s.samples.size() < begin + count) s.samples.resize(begin + count);
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(&s.samples[begin + i].value, raw.data() + i * sizeof(double),
                  sizeof(double));
    }
    return Status::ok_status();
  }
  Expected<std::vector<std::int64_t>> values = compress::unpack_i64(raw, count);
  if (!values.ok()) return values.error();
  if (s.samples.size() < begin + count) s.samples.resize(begin + count);
  for (std::size_t i = 0; i < count; ++i) {
    (column == 0 ? s.samples[begin + i].step : s.samples[begin + i].timestamp_ms) =
        values.value()[i];
  }
  return Status::ok_status();
}

}  // namespace

Status ZarrMetricStore::write(const MetricSet& metrics, const std::string& path) const {
  std::error_code ec;
  fs::remove_all(path, ec);  // overwrite semantics, like a file store
  if (!fs::create_directories(path, ec) && ec) {
    return Error{"cannot create store directory: " + ec.message(), path};
  }

  const std::string codec = options_.compress ? options_.codec : "raw";
  const std::string int_codec = options_.compress ? options_.int_codec : "raw";

  Status s = json::write_file((fs::path(path) / ".zgroup").string(),
                              json::Value(json::make_object({{"zarr_format", 2}})));
  if (!s.ok()) return s;

  json::Array listing;
  for (std::size_t idx = 0; idx < metrics.all().size(); ++idx) {
    const MetricSeries& series = metrics.all()[idx];
    const std::string dir_name = sanitize_dir(idx, series);
    listing.push_back(json::make_object({{"name", series.name},
                                         {"context", series.context},
                                         {"unit", series.unit},
                                         {"path", dir_name},
                                         {"length", series.samples.size()}}));

    for (int column = 0; column < 3; ++column) {
      const fs::path col_dir = fs::path(path) / dir_name / kColumns[column];
      if (!fs::create_directories(col_dir, ec) && ec) {
        return Error{"cannot create column directory: " + ec.message(), col_dir.string()};
      }
      const std::string col_codec = column == 2 ? codec : int_codec;
      json::Object zarray = json::make_object(
          {{"zarr_format", 2},
           {"shape", json::Array{series.samples.size()}},
           {"chunks", json::Array{options_.chunk_length}},
           {"dtype", column == 2 ? "<f8" : "<i8"},
           {"compressor", json::make_object({{"id", col_codec}})},
           {"filters",
            column == 2 ? json::Array{} : json::Array{json::Value(kIntFilter)}}});
      s = json::write_file((col_dir / ".zarray").string(), json::Value(std::move(zarray)));
      if (!s.ok()) return s;

      const std::size_t n = series.samples.size();
      for (std::size_t begin = 0, chunk = 0; begin < n || chunk == 0;
           begin += options_.chunk_length, ++chunk) {
        if (begin >= n && chunk > 0) break;
        const std::size_t end = std::min(begin + options_.chunk_length, n);
        const Bytes raw = column_chunk_bytes(series, column, begin, end);
        Expected<Bytes> packed = compress::pack(raw, col_codec);
        if (!packed.ok()) return packed.error();
        s = compress::write_file_bytes((col_dir / std::to_string(chunk)).string(),
                                       packed.value());
        if (!s.ok()) return s;
        if (end == n) break;
      }
    }
  }

  json::Object attrs;
  attrs.set("series", std::move(listing));
  return json::write_file((fs::path(path) / ".zattrs").string(), json::Value(std::move(attrs)));
}

namespace {

/// Reads the .zattrs listing after checking the .zgroup format marker.
Expected<json::Value> read_listing(const std::string& path) {
  Expected<json::Value> group = json::parse_file((fs::path(path) / ".zgroup").string());
  if (!group.ok()) return group.error();
  const json::Value* zf = group.value().find("zarr_format");
  if (zf == nullptr || !zf->is_int() || zf->as_int() != 2) {
    return Error{"unsupported zarr_format", path};
  }
  Expected<json::Value> attrs = json::parse_file((fs::path(path) / ".zattrs").string());
  if (!attrs.ok()) return attrs;
  const json::Value* listing = attrs.value().find("series");
  if (listing == nullptr || !listing->is_array()) {
    return Error{"missing series listing in .zattrs", path};
  }
  return *listing;
}

/// Loads one series described by a listing entry into `series`.
Status read_entry(const std::string& path, const json::Value& entry,
                  MetricSeries& series) {
  const json::Value* dir = entry.find("path");
  const json::Value* length = entry.find("length");
  if (dir == nullptr || length == nullptr || !length->is_int() || length->as_int() < 0) {
    return Error{"malformed series listing entry", path};
  }
  const auto n = static_cast<std::size_t>(length->as_int());
  // The samples vector grows chunk by chunk inside restore_column — each
  // extension is backed by bytes actually read from disk, so a forged
  // `length` alone cannot demand a giant allocation.

  for (int column = 0; column < 3; ++column) {
    const fs::path col_dir = fs::path(path) / dir->as_string() / kColumns[column];
    Expected<json::Value> zarray = json::parse_file((col_dir / ".zarray").string());
    if (!zarray.ok()) return zarray.error();
    const json::Value* chunks = zarray.value().find("chunks");
    if (chunks == nullptr || !chunks->is_array() || chunks->as_array().empty() ||
        !chunks->as_array()[0].is_int()) {
      return Error{"malformed .zarray chunks", col_dir.string()};
    }
    if (chunks->as_array()[0].as_int() <= 0) {
      return Error{"non-positive chunk length", col_dir.string()};
    }
    const auto chunk_length = static_cast<std::size_t>(chunks->as_array()[0].as_int());

    for (std::size_t begin = 0, chunk = 0; begin < n || chunk == 0;
         begin += chunk_length, ++chunk) {
      if (begin >= n && chunk > 0) break;
      const std::size_t end = std::min(begin + chunk_length, n);
      Expected<Bytes> packed =
          compress::read_file_bytes((col_dir / std::to_string(chunk)).string());
      if (!packed.ok()) return packed.error();
      Expected<Bytes> raw = compress::unpack(packed.value());
      if (!raw.ok()) return raw.error();
      Status s = restore_column(series, column, begin, end - begin, raw.value());
      if (!s.ok()) return s;
      if (end == n) break;
    }
  }
  if (series.samples.size() != n) {
    return Error{"series shorter than declared length", path};
  }
  return Status::ok_status();
}

}  // namespace

Expected<MetricSet> ZarrMetricStore::read(const std::string& path) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();

  MetricSet out;
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* context = entry.find("context");
    if (name == nullptr || context == nullptr) {
      return Error{"malformed series listing entry", path};
    }
    const json::Value* unit = entry.find("unit");
    MetricSeries& series =
        out.series(name->as_string(), context->as_string(),
                   unit != nullptr && unit->is_string() ? unit->as_string() : "");
    Status s = read_entry(path, entry, series);
    if (!s.ok()) return s.error();
  }
  return out;
}

Expected<MetricSeries> ZarrMetricStore::read_series(const std::string& path,
                                                    const std::string& name,
                                                    const std::string& context) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* entry_name = entry.find("name");
    const json::Value* entry_context = entry.find("context");
    if (entry_name == nullptr || entry_context == nullptr) continue;
    if (entry_name->as_string() != name || entry_context->as_string() != context) {
      continue;
    }
    const json::Value* unit = entry.find("unit");
    MetricSeries series;
    series.name = name;
    series.context = context;
    if (unit != nullptr && unit->is_string()) series.unit = unit->as_string();
    Status s = read_entry(path, entry, series);
    if (!s.ok()) return s.error();
    return series;
  }
  return Error{"series not found: " + context + "/" + name, path};
}

Expected<std::vector<std::pair<std::string, std::string>>> ZarrMetricStore::list_series(
    const std::string& path) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();
  std::vector<std::pair<std::string, std::string>> out;
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* context = entry.find("context");
    if (name == nullptr || context == nullptr) continue;
    out.emplace_back(name->as_string(), context->as_string());
  }
  return out;
}

}  // namespace provml::storage
