#include "provml/storage/zarr_store.hpp"

#include <cctype>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <map>
#include <span>
#include <utility>

#include "provml/common/thread_pool.hpp"
#include "provml/compress/container.hpp"
#include "provml/compress/varint.hpp"
#include "provml/json/parse.hpp"
#include "provml/json/write.hpp"

namespace provml::storage {
namespace {

namespace fs = std::filesystem;
using compress::Bytes;

constexpr const char* kColumns[3] = {"step", "timestamp", "value"};
constexpr const char* kIntFilter = "delta-varint";

std::string sanitize_dir(std::size_t index, const std::string& key) {
  std::string out = "s" + std::to_string(index) + "_";
  for (const char c : key) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' || c == '-')
               ? c
               : '_';
  }
  return out;
}

/// Extracts one column of a chunk's samples as raw bytes ready for the
/// codec chain.
Bytes column_chunk_bytes(std::span<const MetricSample> samples, int column) {
  if (column == 2) {  // f64 values, little-endian memcpy
    Bytes out(samples.size() * sizeof(double));
    for (std::size_t i = 0; i < samples.size(); ++i) {
      std::memcpy(out.data() + i * sizeof(double), &samples[i].value, sizeof(double));
    }
    return out;
  }
  std::vector<std::int64_t> values;
  values.reserve(samples.size());
  for (const MetricSample& s : samples) {
    values.push_back(column == 0 ? s.step : s.timestamp_ms);
  }
  return compress::pack_i64(values);
}

Status restore_column(MetricSeries& s, int column, std::size_t begin, std::size_t count,
                      const Bytes& raw) {
  if (column == 2) {
    // Division form: `count * sizeof(double)` would wrap for a forged count.
    if (raw.size() % sizeof(double) != 0 || raw.size() / sizeof(double) != count) {
      return Error{"value chunk size mismatch", s.key()};
    }
    // Grow only after the chunk's real byte count validated `count`, so the
    // listing's declared length can never force a huge allocation by itself.
    if (s.samples.size() < begin + count) s.samples.resize(begin + count);
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(&s.samples[begin + i].value, raw.data() + i * sizeof(double),
                  sizeof(double));
    }
    return Status::ok_status();
  }
  Expected<std::vector<std::int64_t>> values = compress::unpack_i64(raw, count);
  if (!values.ok()) return values.error();
  if (s.samples.size() < begin + count) s.samples.resize(begin + count);
  for (std::size_t i = 0; i < count; ++i) {
    (column == 0 ? s.samples[begin + i].step : s.samples[begin + i].timestamp_ms) =
        values.value()[i];
  }
  return Status::ok_status();
}

/// .zarray metadata for one column at the given logical length. Field
/// order matters: streaming re-publishes must end up byte-identical to the
/// batch writer's single publish.
json::Value zarray_json(std::uint64_t shape, std::size_t chunk_length, int column,
                        const std::string& col_codec) {
  return json::Value(json::make_object(
      {{"zarr_format", 2},
       {"shape", json::Array{json::Value(shape)}},
       {"chunks", json::Array{json::Value(chunk_length)}},
       {"dtype", column == 2 ? "<f8" : "<i8"},
       {"compressor", json::make_object({{"id", col_codec}})},
       {"filters", column == 2 ? json::Array{} : json::Array{json::Value(kIntFilter)}}}));
}

// --------------------------------------------------------------------- sink

/// Streaming writer for the chunked directory layout. Appends stage into a
/// per-series buffer; each time a buffer reaches chunk_length the chunk's
/// three columns are handed to the worker pool for encoding, and the
/// resulting container frames are written strictly in submission order —
/// encode concurrently, publish sequentially, so the on-disk prefix is
/// always contiguous.
class ZarrMetricSink final : public MetricSink {
 public:
  ZarrMetricSink(std::string root, const ZarrOptions& options, const SinkOptions& sink_options)
      : root_(std::move(root)),
        chunk_length_(sink_options.chunk_length != 0 ? sink_options.chunk_length
                                                     : options.chunk_length),
        codec_(options.compress ? options.codec : "raw"),
        int_codec_(options.compress ? options.int_codec : "raw"),
        durable_(sink_options.durable),
        inline_encode_(sink_options.inline_encode),
        pool_(sink_options.encode_pool != nullptr ? *sink_options.encode_pool
                                                  : common::ThreadPool::shared()) {}

  /// Claims the directory: overwrite semantics, like the batch writer.
  Status open() {
    std::error_code ec;
    fs::remove_all(root_, ec);
    if (!fs::create_directories(root_, ec) && ec) {
      return Error{"cannot create store directory: " + ec.message(), root_};
    }
    return json::write_file((fs::path(root_) / ".zgroup").string(),
                            json::Value(json::make_object({{"zarr_format", 2}})));
  }

  Expected<std::size_t> declare_series(const std::string& name, const std::string& context,
                                       const std::string& unit) override {
    if (sealed_) return Error{"sink already sealed", root_};
    const auto it = index_.find({context, name});
    if (it != index_.end()) {
      if (series_[it->second].unit.empty()) series_[it->second].unit = unit;
      return it->second;
    }
    SeriesState state;
    state.name = name;
    state.context = context;
    state.unit = unit;
    state.dir = sanitize_dir(series_.size(), context + "/" + name);
    series_.push_back(std::move(state));
    index_.emplace(std::make_pair(context, name), series_.size() - 1);
    return series_.size() - 1;
  }

  Status append(std::size_t series, const MetricSample& sample) override {
    return append_block(series, &sample, 1);
  }

  Status append_block(std::size_t series, const MetricSample* samples,
                      std::size_t count) override {
    if (sealed_) return Error{"sink already sealed", root_};
    if (series >= series_.size()) return Error{"append to undeclared series", root_};
    SeriesState& s = series_[series];
    for (std::size_t i = 0; i < count; ++i) {
      s.staged.push_back(samples[i]);
      ++s.total;
      if (s.staged.size() >= chunk_length_) {
        Status st = seal_chunk(series);
        if (!st.ok()) return st;
      }
    }
    return Status::ok_status();
  }

  Status flush() override {
    if (sealed_) return Status::ok_status();
    Status st = drain(0);
    if (!st.ok()) return st;
    if (durable_ && (metadata_dirty_ || !attrs_written_)) {
      return publish_metadata(/*final_shape=*/false);
    }
    return Status::ok_status();
  }

  Status seal() override {
    if (sealed_) return Status::ok_status();
    for (std::size_t i = 0; i < series_.size(); ++i) {
      // Partial tail chunk — and, matching the batch layout, one empty
      // chunk 0 for a series that never received a sample.
      if (!series_[i].staged.empty() || series_[i].total == 0) {
        Status st = seal_chunk(i);
        if (!st.ok()) return st;
      }
    }
    Status st = drain(0);
    if (!st.ok()) return st;
    st = publish_metadata(/*final_shape=*/true);
    if (!st.ok()) return st;
    sealed_ = true;
    return Status::ok_status();
  }

 private:
  struct SeriesState {
    std::string name;
    std::string context;
    std::string unit;
    std::string dir;
    std::vector<MetricSample> staged;  ///< samples not yet in a sealed chunk
    std::uint64_t total = 0;           ///< samples appended
    std::uint64_t sealed = 0;          ///< samples handed to the encoder
    std::uint64_t durable = 0;         ///< samples whose chunk triple is on disk
    std::uint64_t published = 0;       ///< length covered by on-disk .zarray
    std::size_t chunks = 0;            ///< chunks handed to the encoder
    bool dirs_created = false;
  };

  struct PendingWrite {
    std::string path;
    std::future<Expected<Bytes>> encoded;
    std::size_t series = 0;
    std::uint64_t covers = 0;   ///< durable samples once this triple completes
    bool completes_chunk = false;  ///< true on the value column
  };

  Status ensure_dirs(SeriesState& s) {
    if (s.dirs_created) return Status::ok_status();
    for (const char* column : kColumns) {
      std::error_code ec;
      const fs::path col_dir = fs::path(root_) / s.dir / column;
      if (!fs::create_directories(col_dir, ec) && ec) {
        return Error{"cannot create column directory: " + ec.message(), col_dir.string()};
      }
    }
    s.dirs_created = true;
    return Status::ok_status();
  }

  /// Moves the staged buffer into three encode jobs on the pool and queues
  /// their outputs for in-order writing.
  Status seal_chunk(std::size_t idx) {
    SeriesState& s = series_[idx];
    Status st = ensure_dirs(s);
    if (!st.ok()) return st;
    const auto samples =
        std::make_shared<const std::vector<MetricSample>>(std::move(s.staged));
    s.staged = {};
    const std::size_t chunk = s.chunks++;
    s.sealed += samples->size();
    const std::uint64_t covers = s.sealed;
    for (int column = 0; column < 3; ++column) {
      const std::string col_codec = column == 2 ? codec_ : int_codec_;
      PendingWrite w;
      w.path = (fs::path(root_) / s.dir / kColumns[column] / std::to_string(chunk)).string();
      if (inline_encode_) {
        std::promise<Expected<Bytes>> ready;
        ready.set_value(compress::pack(column_chunk_bytes(*samples, column), col_codec));
        w.encoded = ready.get_future();
      } else {
        w.encoded = pool_.submit([samples, column, col_codec] {
          return compress::pack(column_chunk_bytes(*samples, column), col_codec);
        });
      }
      w.series = idx;
      w.covers = covers;
      w.completes_chunk = column == 2;
      pending_.push_back(std::move(w));
    }
    // Bound in-flight encoded chunks so a huge batch write cannot hold the
    // whole store in memory: leave roughly one wave per worker queued.
    const std::size_t limit = 3 * (pool_.worker_count() + 1);
    return pending_.size() > limit ? drain(limit) : Status::ok_status();
  }

  /// Writes queued chunk files oldest-first until at most `keep` remain.
  Status drain(std::size_t keep) {
    while (pending_.size() > keep) {
      PendingWrite w = std::move(pending_.front());
      pending_.pop_front();
      Expected<Bytes> packed = w.encoded.get();
      if (!packed.ok()) return packed.error();
      Status st = compress::write_file_bytes(w.path, packed.value());
      if (!st.ok()) return st;
      if (w.completes_chunk && w.covers > series_[w.series].durable) {
        series_[w.series].durable = w.covers;
        metadata_dirty_ = true;
      }
    }
    return Status::ok_status();
  }

  /// Publishes .zarray for every series (shape = durable prefix, or the
  /// full total at seal) and then the .zattrs listing — last, so it stays
  /// the batch commit point and, when streaming, never declares samples
  /// whose chunks are not on disk yet.
  Status publish_metadata(bool final_shape) {
    json::Array listing;
    for (SeriesState& s : series_) {
      const std::uint64_t len = final_shape ? s.total : s.durable;
      if (len != s.published || !attrs_written_ || final_shape) {
        Status st = ensure_dirs(s);
        if (!st.ok()) return st;
        for (int column = 0; column < 3; ++column) {
          const std::string col_codec = column == 2 ? codec_ : int_codec_;
          const fs::path col_dir = fs::path(root_) / s.dir / kColumns[column];
          st = json::write_file((col_dir / ".zarray").string(),
                                zarray_json(len, chunk_length_, column, col_codec));
          if (!st.ok()) return st;
        }
        s.published = len;
      }
      listing.push_back(json::make_object({{"name", s.name},
                                           {"context", s.context},
                                           {"unit", s.unit},
                                           {"path", s.dir},
                                           {"length", json::Value(len)}}));
    }
    json::Object attrs;
    attrs.set("series", std::move(listing));
    Status st = json::write_file((fs::path(root_) / ".zattrs").string(),
                                 json::Value(std::move(attrs)));
    if (!st.ok()) return st;
    attrs_written_ = true;
    metadata_dirty_ = false;
    return Status::ok_status();
  }

  std::string root_;
  std::size_t chunk_length_;
  std::string codec_;
  std::string int_codec_;
  bool durable_;
  bool inline_encode_ = false;
  common::ThreadPool& pool_;

  std::vector<SeriesState> series_;
  std::map<std::pair<std::string, std::string>, std::size_t> index_;  // (ctx, name)
  std::deque<PendingWrite> pending_;
  bool attrs_written_ = false;
  bool metadata_dirty_ = false;
  bool sealed_ = false;
};

}  // namespace

Expected<std::unique_ptr<MetricSink>> ZarrMetricStore::open_sink(
    const std::string& path, const SinkOptions& options) const {
  auto sink = std::make_unique<ZarrMetricSink>(path, options_, options);
  Status st = sink->open();
  if (!st.ok()) return st.error();
  return std::unique_ptr<MetricSink>(std::move(sink));
}

namespace {

/// Reads the .zattrs listing after checking the .zgroup format marker.
Expected<json::Value> read_listing(const std::string& path) {
  Expected<json::Value> group = json::parse_file((fs::path(path) / ".zgroup").string());
  if (!group.ok()) return group.error();
  const json::Value* zf = group.value().find("zarr_format");
  if (zf == nullptr || !zf->is_int() || zf->as_int() != 2) {
    return Error{"unsupported zarr_format", path};
  }
  Expected<json::Value> attrs = json::parse_file((fs::path(path) / ".zattrs").string());
  if (!attrs.ok()) return attrs;
  const json::Value* listing = attrs.value().find("series");
  if (listing == nullptr || !listing->is_array()) {
    return Error{"missing series listing in .zattrs", path};
  }
  return *listing;
}

/// Loads one series described by a listing entry into `series`. A store
/// abandoned by a killed streaming writer may declare more samples than
/// its chunk files cover; a missing *chunk* file truncates the series to
/// the longest prefix every column can serve. A missing .zarray or a
/// present-but-corrupt file is still a hard error (listed series publish
/// their .zarray before the listing, so a crash cannot lose one).
Status read_entry(const std::string& path, const json::Value& entry,
                  MetricSeries& series) {
  const json::Value* dir = entry.find("path");
  const json::Value* length = entry.find("length");
  if (dir == nullptr || length == nullptr || !length->is_int() || length->as_int() < 0) {
    return Error{"malformed series listing entry", path};
  }
  const auto n = static_cast<std::size_t>(length->as_int());
  // The samples vector grows chunk by chunk inside restore_column — each
  // extension is backed by bytes actually read from disk, so a forged
  // `length` alone cannot demand a giant allocation.

  std::size_t effective = n;  // min prefix across columns
  for (int column = 0; column < 3; ++column) {
    const fs::path col_dir = fs::path(path) / dir->as_string() / kColumns[column];
    std::error_code ec;
    // A series only enters the .zattrs listing after its .zarray files are
    // on disk, so a missing .zarray is corruption — not a crashed tail.
    Expected<json::Value> zarray = json::parse_file((col_dir / ".zarray").string());
    if (!zarray.ok()) return zarray.error();
    const json::Value* chunks = zarray.value().find("chunks");
    if (chunks == nullptr || !chunks->is_array() || chunks->as_array().empty() ||
        !chunks->as_array()[0].is_int()) {
      return Error{"malformed .zarray chunks", col_dir.string()};
    }
    if (chunks->as_array()[0].as_int() <= 0) {
      return Error{"non-positive chunk length", col_dir.string()};
    }
    const auto chunk_length = static_cast<std::size_t>(chunks->as_array()[0].as_int());

    std::size_t achieved = n;
    for (std::size_t begin = 0, chunk = 0; begin < n || chunk == 0;
         begin += chunk_length, ++chunk) {
      if (begin >= n && chunk > 0) break;
      const std::size_t end = std::min(begin + chunk_length, n);
      const fs::path chunk_path = col_dir / std::to_string(chunk);
      if (!fs::exists(chunk_path, ec)) {
        achieved = begin;  // missing tail chunk: the declared shape is stale
        break;
      }
      Expected<Bytes> packed = compress::read_file_bytes(chunk_path.string());
      if (!packed.ok()) return packed.error();
      Expected<Bytes> raw = compress::unpack(packed.value());
      if (!raw.ok()) return raw.error();
      Status s = restore_column(series, column, begin, end - begin, raw.value());
      if (!s.ok()) return s;
      if (end == n) break;
    }
    effective = std::min(effective, achieved);
  }
  if (effective < n) {
    series.samples.resize(effective);
    return Status::ok_status();
  }
  if (series.samples.size() != n) {
    return Error{"series shorter than declared length", path};
  }
  return Status::ok_status();
}

}  // namespace

Expected<MetricSet> ZarrMetricStore::read(const std::string& path) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();

  MetricSet out;
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* context = entry.find("context");
    if (name == nullptr || context == nullptr) {
      return Error{"malformed series listing entry", path};
    }
    const json::Value* unit = entry.find("unit");
    MetricSeries& series =
        out.series(name->as_string(), context->as_string(),
                   unit != nullptr && unit->is_string() ? unit->as_string() : "");
    Status s = read_entry(path, entry, series);
    if (!s.ok()) return s.error();
  }
  return out;
}

Expected<MetricSeries> ZarrMetricStore::read_series(const std::string& path,
                                                    const std::string& name,
                                                    const std::string& context) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* entry_name = entry.find("name");
    const json::Value* entry_context = entry.find("context");
    if (entry_name == nullptr || entry_context == nullptr) continue;
    if (entry_name->as_string() != name || entry_context->as_string() != context) {
      continue;
    }
    const json::Value* unit = entry.find("unit");
    MetricSeries series;
    series.name = name;
    series.context = context;
    if (unit != nullptr && unit->is_string()) series.unit = unit->as_string();
    Status s = read_entry(path, entry, series);
    if (!s.ok()) return s.error();
    return series;
  }
  return Error{"series not found: " + context + "/" + name, path};
}

Expected<std::vector<std::pair<std::string, std::string>>> ZarrMetricStore::list_series(
    const std::string& path) const {
  Expected<json::Value> listing = read_listing(path);
  if (!listing.ok()) return listing.error();
  std::vector<std::pair<std::string, std::string>> out;
  for (const json::Value& entry : listing.value().as_array()) {
    const json::Value* name = entry.find("name");
    const json::Value* context = entry.find("context");
    if (name == nullptr || context == nullptr) continue;
    out.emplace_back(name->as_string(), context->as_string());
  }
  return out;
}

}  // namespace provml::storage
