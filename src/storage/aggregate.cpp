#include "provml/storage/aggregate.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>

namespace provml::storage {

SeriesSummary summarize(const MetricSeries& series) {
  SeriesSummary summary;
  if (series.samples.empty()) return summary;
  summary.count = series.samples.size();
  summary.min = series.samples.front().value;
  summary.max = series.samples.front().value;
  double sum = 0;
  for (const MetricSample& s : series.samples) {
    summary.min = std::min(summary.min, s.value);
    summary.max = std::max(summary.max, s.value);
    sum += s.value;
  }
  summary.mean = sum / static_cast<double>(summary.count);
  double var = 0;
  for (const MetricSample& s : series.samples) {
    var += (s.value - summary.mean) * (s.value - summary.mean);
  }
  summary.stddev = std::sqrt(var / static_cast<double>(summary.count));
  summary.first = series.samples.front().value;
  summary.last = series.samples.back().value;
  summary.first_step = series.samples.front().step;
  summary.last_step = series.samples.back().step;
  summary.duration_ms =
      series.samples.back().timestamp_ms - series.samples.front().timestamp_ms;
  return summary;
}

MetricSeries downsample(const MetricSeries& series, std::size_t max_points) {
  if (max_points == 0 || series.samples.size() <= max_points) return series;
  MetricSeries out;
  out.name = series.name;
  out.context = series.context;
  out.unit = series.unit;
  const std::size_t n = series.samples.size();
  out.samples.reserve(max_points);
  for (std::size_t bucket = 0; bucket < max_points; ++bucket) {
    const std::size_t begin = bucket * n / max_points;
    const std::size_t end = (bucket + 1) * n / max_points;
    double sum = 0;
    for (std::size_t i = begin; i < end; ++i) sum += series.samples[i].value;
    const std::size_t mid = begin + (end - begin) / 2;
    out.samples.push_back({series.samples[mid].step, series.samples[mid].timestamp_ms,
                           sum / static_cast<double>(end - begin)});
  }
  return out;
}

double trend_per_step(const MetricSeries& series) {
  const std::size_t n = series.samples.size();
  if (n < 2) return 0.0;
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  for (const MetricSample& s : series.samples) {
    const auto x = static_cast<double>(s.step);
    sx += x;
    sy += s.value;
    sxx += x * x;
    sxy += x * s.value;
  }
  const double denom = static_cast<double>(n) * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (static_cast<double>(n) * sxy - sx * sy) / denom;
}

double integrate_over_time(const MetricSeries& series) {
  double total = 0;
  for (std::size_t i = 1; i < series.samples.size(); ++i) {
    const double dt_s = static_cast<double>(series.samples[i].timestamp_ms -
                                            series.samples[i - 1].timestamp_ms) /
                        1000.0;
    total += 0.5 * (series.samples[i].value + series.samples[i - 1].value) * dt_s;
  }
  return total;
}

namespace {

std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n") == std::string::npos) return raw;
  std::string out = "\"";
  for (const char c : raw) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void append_double(std::string& out, double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

}  // namespace

std::string to_csv(const MetricSet& metrics) {
  std::string out = "series,context,unit,step,timestamp_ms,value\n";
  for (const MetricSeries& series : metrics.all()) {
    const std::string prefix = csv_field(series.name) + "," + csv_field(series.context) +
                               "," + csv_field(series.unit) + ",";
    for (const MetricSample& sample : series.samples) {
      out += prefix;
      out += std::to_string(sample.step);
      out += ',';
      out += std::to_string(sample.timestamp_ms);
      out += ',';
      append_double(out, sample.value);
      out += '\n';
    }
  }
  return out;
}

Status write_csv(const MetricSet& metrics, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Error{"cannot open file for writing", path};
  const std::string text = to_csv(metrics);
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!out) return Error{"write failed", path};
  return Status::ok_status();
}

}  // namespace provml::storage
