#include "provml/storage/netcdf_store.hpp"

#include <cstring>

#include "provml/compress/container.hpp"
#include "provml/compress/varint.hpp"

namespace provml::storage {
namespace {

using compress::Bytes;

constexpr char kMagic[4] = {'P', 'N', 'C', '1'};

void append_string(Bytes& out, const std::string& s) {
  compress::varint_append(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

Expected<std::string> read_string(const Bytes& data, std::size_t& offset) {
  Expected<std::uint64_t> len = compress::varint_read(data, offset);
  if (!len.ok()) return len.error();
  // Subtraction form: `offset + len` would wrap for a forged 64-bit length.
  if (len.value() > data.size() - offset) return Error{"truncated string", "netcdf"};
  std::string s(reinterpret_cast<const char*>(data.data()) + offset,
                static_cast<std::size_t>(len.value()));
  offset += static_cast<std::size_t>(len.value());
  return s;
}

void append_block(Bytes& out, const Bytes& block) {
  compress::varint_append(out, block.size());
  out.insert(out.end(), block.begin(), block.end());
}

Expected<Bytes> read_block(const Bytes& data, std::size_t& offset) {
  Expected<std::uint64_t> len = compress::varint_read(data, offset);
  if (!len.ok()) return len.error();
  if (len.value() > data.size() - offset) return Error{"truncated block", "netcdf"};
  Bytes block(data.begin() + static_cast<std::ptrdiff_t>(offset),
              data.begin() + static_cast<std::ptrdiff_t>(offset + len.value()));
  offset += static_cast<std::size_t>(len.value());
  return block;
}

}  // namespace

namespace {

/// The batch serializer: assembles the whole single-file image. Both
/// write() (via the base-class sink loop) and streaming sinks funnel
/// through this, so their bytes cannot diverge.
Status encode_netcdf(const MetricSet& metrics,
                     const std::vector<std::pair<std::string, std::string>>& attributes,
                     const std::string& path) {
  Bytes out;
  out.insert(out.end(), kMagic, kMagic + 4);

  compress::varint_append(out, attributes.size());
  for (const auto& [key, value] : attributes) {
    append_string(out, key);
    append_string(out, value);
  }

  compress::varint_append(out, metrics.all().size());
  for (const MetricSeries& s : metrics.all()) {
    append_string(out, s.name);
    append_string(out, s.context);
    append_string(out, s.unit);
    compress::varint_append(out, s.samples.size());

    std::vector<std::int64_t> steps;
    std::vector<std::int64_t> timestamps;
    steps.reserve(s.samples.size());
    timestamps.reserve(s.samples.size());
    for (const MetricSample& sample : s.samples) {
      steps.push_back(sample.step);
      timestamps.push_back(sample.timestamp_ms);
    }
    // Integer columns: delta+zigzag+varint, then lzss inside the file.
    for (const auto* column : {&steps, &timestamps}) {
      Expected<Bytes> packed_ints = compress::pack(compress::pack_i64(*column), "lzss");
      if (!packed_ints.ok()) return packed_ints.error();
      append_block(out, packed_ints.value());
    }

    // Values are shuffle+lzss-compressed inside the file (NetCDF-4-style
    // internal deflate — the Table 1 behaviour this format reproduces).
    Bytes values(s.samples.size() * sizeof(double));
    for (std::size_t i = 0; i < s.samples.size(); ++i) {
      std::memcpy(values.data() + i * sizeof(double), &s.samples[i].value, sizeof(double));
    }
    Expected<Bytes> packed = compress::pack(values, "shuffle+lzss");
    if (!packed.ok()) return packed.error();
    append_block(out, packed.value());
  }
  return compress::write_file_bytes(path, out);
}

}  // namespace

Expected<std::unique_ptr<MetricSink>> NetcdfMetricStore::open_sink(
    const std::string& path, const SinkOptions& /*options*/) const {
  // Single-file format with counts ahead of the data: buffer in the sink
  // and publish one atomic file at seal.
  const std::vector<std::pair<std::string, std::string>> attributes = attributes_;
  return std::unique_ptr<MetricSink>(new BufferedMetricSink(
      path, [attributes](const MetricSet& metrics, const std::string& dst) {
        return encode_netcdf(metrics, attributes, dst);
      }));
}

Expected<MetricSet> NetcdfMetricStore::read(const std::string& path) const {
  Expected<Bytes> file = compress::read_file_bytes(path);
  if (!file.ok()) return file.error();
  const Bytes& data = file.value();
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Error{"bad netcdf-like magic", path};
  }
  std::size_t offset = 4;

  Expected<std::uint64_t> attr_count = compress::varint_read(data, offset);
  if (!attr_count.ok()) return attr_count.error();
  for (std::uint64_t i = 0; i < attr_count.value(); ++i) {
    Expected<std::string> key = read_string(data, offset);
    if (!key.ok()) return key.error();
    Expected<std::string> value = read_string(data, offset);
    if (!value.ok()) return value.error();
  }

  Expected<std::uint64_t> series_count = compress::varint_read(data, offset);
  if (!series_count.ok()) return series_count.error();

  MetricSet out;
  for (std::uint64_t i = 0; i < series_count.value(); ++i) {
    Expected<std::string> name = read_string(data, offset);
    if (!name.ok()) return name.error();
    Expected<std::string> context = read_string(data, offset);
    if (!context.ok()) return context.error();
    Expected<std::string> unit = read_string(data, offset);
    if (!unit.ok()) return unit.error();
    Expected<std::uint64_t> count = compress::varint_read(data, offset);
    if (!count.ok()) return count.error();
    const auto n = static_cast<std::size_t>(count.value());

    Expected<Bytes> packed_steps = read_block(data, offset);
    if (!packed_steps.ok()) return packed_steps.error();
    Expected<Bytes> step_block = compress::unpack(packed_steps.value());
    if (!step_block.ok()) return step_block.error();
    Expected<Bytes> packed_times = read_block(data, offset);
    if (!packed_times.ok()) return packed_times.error();
    Expected<Bytes> time_block = compress::unpack(packed_times.value());
    if (!time_block.ok()) return time_block.error();
    Expected<Bytes> packed_values = read_block(data, offset);
    if (!packed_values.ok()) return packed_values.error();
    Expected<Bytes> value_block = compress::unpack(packed_values.value());
    if (!value_block.ok()) return value_block.error();

    Expected<std::vector<std::int64_t>> steps = compress::unpack_i64(step_block.value(), n);
    if (!steps.ok()) return steps.error();
    Expected<std::vector<std::int64_t>> timestamps =
        compress::unpack_i64(time_block.value(), n);
    if (!timestamps.ok()) return timestamps.error();
    // Division form: `n * sizeof(double)` would wrap for a forged count.
    if (value_block.value().size() % sizeof(double) != 0 ||
        value_block.value().size() / sizeof(double) != n) {
      return Error{"value column size mismatch", path};
    }

    MetricSeries& series = out.series(name.value(), context.value(), unit.value());
    series.samples.resize(n);
    for (std::size_t k = 0; k < n; ++k) {
      series.samples[k].step = steps.value()[k];
      series.samples[k].timestamp_ms = timestamps.value()[k];
      std::memcpy(&series.samples[k].value, value_block.value().data() + k * sizeof(double),
                  sizeof(double));
    }
  }
  if (offset != data.size()) return Error{"trailing bytes after variables", path};
  return out;
}

Expected<std::vector<std::pair<std::string, std::string>>> NetcdfMetricStore::read_attributes(
    const std::string& path) {
  Expected<Bytes> file = compress::read_file_bytes(path);
  if (!file.ok()) return file.error();
  const Bytes& data = file.value();
  if (data.size() < 4 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Error{"bad netcdf-like magic", path};
  }
  std::size_t offset = 4;
  Expected<std::uint64_t> attr_count = compress::varint_read(data, offset);
  if (!attr_count.ok()) return attr_count.error();
  std::vector<std::pair<std::string, std::string>> attrs;
  for (std::uint64_t i = 0; i < attr_count.value(); ++i) {
    Expected<std::string> key = read_string(data, offset);
    if (!key.ok()) return key.error();
    Expected<std::string> value = read_string(data, offset);
    if (!value.ok()) return value.error();
    attrs.emplace_back(key.take(), value.take());
  }
  return attrs;
}

}  // namespace provml::storage
