#include "provml/storage/series.hpp"

namespace provml::storage {

MetricSet& MetricSet::operator=(const MetricSet& other) {
  if (this != &other) {
    series_.clear();
    series_.reserve(other.series_.size());
    for (const auto& s : other.series_) {
      series_.push_back(std::make_unique<MetricSeries>(*s));
    }
  }
  return *this;
}

MetricSeries& MetricSet::series(const std::string& name, const std::string& context,
                                const std::string& unit) {
  for (const auto& s : series_) {
    if (s->name == name && s->context == context) {
      if (s->unit.empty() && !unit.empty()) s->unit = unit;
      return *s;
    }
  }
  series_.push_back(std::make_unique<MetricSeries>(MetricSeries{name, context, unit, {}}));
  return *series_.back();
}

const MetricSeries* MetricSet::find(const std::string& name, const std::string& context) const {
  for (const auto& s : series_) {
    if (s->name == name && s->context == context) return s.get();
  }
  return nullptr;
}

std::size_t MetricSet::total_samples() const {
  std::size_t total = 0;
  for (const auto& s : series_) total += s->samples.size();
  return total;
}

bool operator==(const MetricSet& a, const MetricSet& b) {
  if (a.series_.size() != b.series_.size()) return false;
  for (std::size_t i = 0; i < a.series_.size(); ++i) {
    if (!(*a.series_[i] == *b.series_[i])) return false;
  }
  return true;
}

}  // namespace provml::storage
