#include "provml/storage/sink.hpp"

namespace provml::storage {

Status MetricSink::append_block(std::size_t series, const MetricSample* samples,
                                std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    Status s = append(series, samples[i]);
    if (!s.ok()) return s;
  }
  return Status::ok_status();
}

Expected<std::size_t> BufferedMetricSink::declare_series(const std::string& name,
                                                         const std::string& context,
                                                         const std::string& unit) {
  if (sealed_) return Error{"sink already sealed", path_};
  MetricSeries& series = set_.series(name, context, unit);
  for (std::size_t i = 0; i < by_id_.size(); ++i) {
    if (by_id_[i] == &series) return i;
  }
  by_id_.push_back(&series);
  return by_id_.size() - 1;
}

Status BufferedMetricSink::append(std::size_t series, const MetricSample& sample) {
  if (sealed_) return Error{"sink already sealed", path_};
  if (series >= by_id_.size()) return Error{"append to undeclared series", path_};
  by_id_[series]->samples.push_back(sample);
  return Status::ok_status();
}

Status BufferedMetricSink::append_block(std::size_t series, const MetricSample* samples,
                                        std::size_t count) {
  if (sealed_) return Error{"sink already sealed", path_};
  if (series >= by_id_.size()) return Error{"append to undeclared series", path_};
  std::vector<MetricSample>& dst = by_id_[series]->samples;
  dst.insert(dst.end(), samples, samples + count);
  return Status::ok_status();
}

Status BufferedMetricSink::seal() {
  if (sealed_) return Status::ok_status();
  sealed_ = true;
  return writer_(set_, path_);
}

}  // namespace provml::storage
