#include "provml/analysis/forecast.hpp"

#include <algorithm>
#include <cmath>

namespace provml::analysis {
namespace {

bool has_type(const prov::Element& e, std::string_view type) {
  for (const auto& [key, value] : e.attributes) {
    if (key == "prov:type" && value.value.is_string() && value.value.as_string() == type) {
      return true;
    }
  }
  return false;
}

}  // namespace

Expected<RunRecord> harvest_record(const prov::Document& doc) {
  RunRecord record;
  bool found_run = false;
  for (const prov::Element& e : doc.elements()) {
    if (has_type(e, "provml:RunExecution")) {
      found_run = true;
      const prov::AttributeValue* name = prov::find_attribute(e.attributes, "provml:run_name");
      if (name != nullptr && name->value.is_string()) record.run_name = name->value.as_string();
      continue;
    }
    if (!has_type(e, "provml:Parameter")) continue;
    const prov::AttributeValue* name = prov::find_attribute(e.attributes, "provml:name");
    const prov::AttributeValue* value = prov::find_attribute(e.attributes, "provml:value");
    const prov::AttributeValue* role = prov::find_attribute(e.attributes, "provml:role");
    if (name == nullptr || value == nullptr || role == nullptr) continue;
    if (!name->value.is_string() || !role->value.is_string()) continue;
    double numeric = 0;
    if (value->value.is_number()) {
      numeric = value->value.as_double();
    } else if (value->value.is_bool()) {
      numeric = value->value.as_bool() ? 1.0 : 0.0;
    } else {
      continue;  // non-numeric parameter: not usable as a k-NN feature
    }
    if (role->value.as_string() == "input") {
      record.features[name->value.as_string()] = numeric;
    } else {
      record.outputs[name->value.as_string()] = numeric;
    }
  }
  if (!found_run) {
    return Error{"document contains no provml:RunExecution", "forecast"};
  }
  return record;
}

void RunDatabase::add(RunRecord record) { records_.push_back(std::move(record)); }

Status RunDatabase::add_document(const prov::Document& doc) {
  Expected<RunRecord> record = harvest_record(doc);
  if (!record.ok()) return record.error();
  add(record.take());
  return Status::ok_status();
}

Expected<Prediction> RunDatabase::predict(const std::map<std::string, double>& query,
                                          const std::string& output_name,
                                          std::size_t k) const {
  // Candidate set: records that report the requested output.
  std::vector<const RunRecord*> candidates;
  for (const RunRecord& r : records_) {
    if (r.outputs.count(output_name) != 0) candidates.push_back(&r);
  }
  if (candidates.empty()) {
    return Error{"no stored run reports output '" + output_name + "'", "forecast"};
  }
  if (k == 0) return Error{"k must be positive", "forecast"};

  // Per-dimension mean/stddev over candidates for z-normalization; only
  // dimensions present in the query participate in the distance.
  std::map<std::string, std::pair<double, double>> stats;  // name → (mean, std)
  for (const auto& [dim, unused] : query) {
    double sum = 0;
    double count = 0;
    for (const RunRecord* r : candidates) {
      const auto it = r->features.find(dim);
      if (it != r->features.end()) {
        sum += it->second;
        ++count;
      }
    }
    if (count == 0) continue;  // nobody has this dimension: skip it
    const double mean = sum / count;
    double var = 0;
    for (const RunRecord* r : candidates) {
      const auto it = r->features.find(dim);
      if (it != r->features.end()) var += (it->second - mean) * (it->second - mean);
    }
    const double stddev = std::sqrt(var / count);
    stats[dim] = {mean, stddev > 1e-12 ? stddev : 1.0};
  }
  if (stats.empty()) {
    return Error{"query shares no numeric feature with the database", "forecast"};
  }

  struct Scored {
    double distance;
    const RunRecord* record;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const RunRecord* r : candidates) {
    double d2 = 0;
    for (const auto& [dim, ms] : stats) {
      const double q = (query.at(dim) - ms.first) / ms.second;
      const auto it = r->features.find(dim);
      // A record missing the dimension sits at the mean (z = 0).
      const double v = it != r->features.end() ? (it->second - ms.first) / ms.second : 0.0;
      d2 += (q - v) * (q - v);
    }
    scored.push_back({std::sqrt(d2), r});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.distance < b.distance; });
  const std::size_t use = std::min(k, scored.size());

  double weight_sum = 0;
  double value_sum = 0;
  double distance_sum = 0;
  Prediction prediction;
  for (std::size_t i = 0; i < use; ++i) {
    const double w = 1.0 / (scored[i].distance + 1e-9);
    weight_sum += w;
    value_sum += w * scored[i].record->outputs.at(output_name);
    distance_sum += scored[i].distance;
    prediction.neighbors_used.push_back(scored[i].record->run_name);
  }
  prediction.value = value_sum / weight_sum;
  prediction.confidence = 1.0 / (1.0 + distance_sum / static_cast<double>(use));
  return prediction;
}

}  // namespace provml::analysis
