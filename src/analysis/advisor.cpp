#include "provml/analysis/advisor.hpp"

#include <algorithm>
#include <cmath>

namespace provml::analysis {

const char* stop_reason_name(StopReason reason) {
  switch (reason) {
    case StopReason::kContinue: return "continue";
    case StopReason::kConverged: return "converged";
    case StopReason::kTargetReached: return "target-reached";
    case StopReason::kEnergyBudget: return "energy-budget";
    case StopReason::kTimeBudget: return "time-budget";
  }
  return "?";
}

double TrainingAdvisor::extrapolate_next() const {
  // log-log linear regression of (epoch index, loss - floor). The floor is
  // projected one improvement step below the best observed loss (clamped at
  // 0) — a fixed fraction of `best` would sit far above the true limit for
  // fast-decaying curves and make every prediction look converged.
  const double best = *std::min_element(losses_.begin(), losses_.end());
  const double prev = losses_.size() >= 2 ? losses_[losses_.size() - 2] : best;
  const double floor = std::max(0.0, 2.0 * best - std::max(prev, best));
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  double n = 0;
  for (std::size_t i = 0; i < losses_.size(); ++i) {
    const double gap = losses_[i] - floor;
    if (gap <= 0) continue;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(gap);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  if (n < 2) return losses_.back();
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return losses_.back();
  const double slope = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - slope * sx) / n;
  const double next_x = std::log(static_cast<double>(losses_.size() + 1));
  return floor + std::exp(intercept + slope * next_x);
}

Advice TrainingAdvisor::observe(int /*epoch*/, double loss, double cumulative_energy_j,
                                double cumulative_time_s) {
  losses_.push_back(loss);
  Advice advice;

  if (config_.target_loss > 0 && loss <= config_.target_loss) {
    advice.reason = StopReason::kTargetReached;
    advice.should_stop = true;
    return advice;
  }
  if (config_.energy_budget_j > 0 && cumulative_energy_j >= config_.energy_budget_j) {
    advice.reason = StopReason::kEnergyBudget;
    advice.should_stop = true;
    return advice;
  }
  if (config_.time_budget_s > 0 && cumulative_time_s >= config_.time_budget_s) {
    advice.reason = StopReason::kTimeBudget;
    advice.should_stop = true;
    return advice;
  }
  if (static_cast<int>(losses_.size()) < config_.warmup_epochs) {
    return advice;  // not enough history to extrapolate
  }

  advice.predicted_next_loss = extrapolate_next();
  const double extrapolated =
      loss > 0 ? std::max(0.0, (loss - advice.predicted_next_loss) / loss) : 0.0;
  // The power-law model underestimates curves that decay faster than any
  // power law (e.g. early exponential phases); never report less than half
  // of the improvement just observed — a run that just dropped 50% is not
  // converged, whatever the fit says.
  double observed = 0.0;
  if (losses_.size() >= 2 && losses_[losses_.size() - 2] > 0) {
    observed = std::max(0.0, (losses_[losses_.size() - 2] - loss) /
                                 losses_[losses_.size() - 2]);
  }
  advice.predicted_improvement = std::max(extrapolated, 0.5 * observed);
  if (advice.predicted_improvement < config_.min_relative_improvement) {
    ++converged_streak_;
  } else {
    converged_streak_ = 0;
  }
  if (converged_streak_ >= config_.patience) {
    advice.reason = StopReason::kConverged;
    advice.should_stop = true;
  }
  return advice;
}

}  // namespace provml::analysis
