#include "provml/analysis/scaling_fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <set>

namespace provml::analysis {
namespace {

/// Solves the 3×3 linear system M·x = v by Gaussian elimination with
/// partial pivoting. Returns false when (numerically) singular.
bool solve3(std::array<std::array<double, 3>, 3> m, std::array<double, 3> v,
            std::array<double, 3>& x) {
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::abs(m[row][col]) > std::abs(m[pivot][col])) pivot = row;
    }
    if (std::abs(m[pivot][col]) < 1e-30) return false;
    std::swap(m[col], m[pivot]);
    std::swap(v[col], v[pivot]);
    for (int row = col + 1; row < 3; ++row) {
      const double factor = m[row][col] / m[col][col];
      for (int k = col; k < 3; ++k) m[row][k] -= factor * m[col][k];
      v[row] -= factor * v[col];
    }
  }
  for (int row = 2; row >= 0; --row) {
    double acc = v[row];
    for (int k = row + 1; k < 3; ++k) acc -= m[row][k] * x[static_cast<std::size_t>(k)];
    x[static_cast<std::size_t>(row)] = acc / m[row][row];
  }
  return true;
}

/// For fixed exponents, least-squares over (E, A, B); returns SSE or
/// infinity when the system is singular or coefficients are negative
/// (the law is only physically meaningful with E, A, B >= 0).
double solve_linear(const std::vector<ScalingPoint>& points, double alpha, double beta,
                    double& e, double& a, double& b) {
  // Normal equations for features f = (1, N^-alpha, D^-beta).
  std::array<std::array<double, 3>, 3> m{};
  std::array<double, 3> v{};
  for (const ScalingPoint& p : points) {
    const std::array<double, 3> f{1.0, std::pow(p.parameters, -alpha),
                                  std::pow(p.samples_seen, -beta)};
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) {
        m[i][j] += f[static_cast<std::size_t>(i)] * f[static_cast<std::size_t>(j)];
      }
      v[static_cast<std::size_t>(i)] += f[static_cast<std::size_t>(i)] * p.loss;
    }
  }
  std::array<double, 3> x{};
  if (!solve3(m, v, x)) return std::numeric_limits<double>::infinity();
  if (x[0] < 0 || x[1] < 0 || x[2] < 0) return std::numeric_limits<double>::infinity();
  e = x[0];
  a = x[1];
  b = x[2];
  double sse = 0;
  for (const ScalingPoint& p : points) {
    const double pred =
        e + a * std::pow(p.parameters, -alpha) + b * std::pow(p.samples_seen, -beta);
    sse += (pred - p.loss) * (pred - p.loss);
  }
  return sse;
}

}  // namespace

double ScalingLaw::predict(double parameters, double samples) const {
  return e + a * std::pow(parameters, -alpha) + b * std::pow(samples, -beta);
}

double ScalingLaw::samples_to_reach(double parameters, double target_loss) const {
  const double asymptote = e + a * std::pow(parameters, -alpha);
  if (target_loss <= asymptote) return std::numeric_limits<double>::infinity();
  // Closed form: B·D^-beta = target - asymptote  →  D = (B / gap)^(1/beta).
  const double gap = target_loss - asymptote;
  if (b <= 0 || beta <= 0) return 1.0;
  return std::pow(b / gap, 1.0 / beta);
}

Expected<ScalingLaw> fit_scaling_law(const std::vector<ScalingPoint>& points,
                                     const FitOptions& options) {
  if (points.size() < 4) {
    return Error{"need at least 4 observations to fit the scaling law", "scaling-fit"};
  }
  std::set<double> distinct_n;
  std::set<double> distinct_d;
  for (const ScalingPoint& p : points) {
    if (p.parameters <= 0 || p.samples_seen <= 0 || !std::isfinite(p.loss)) {
      return Error{"observations must have positive N, D and finite loss", "scaling-fit"};
    }
    distinct_n.insert(p.parameters);
    distinct_d.insert(p.samples_seen);
  }
  if (distinct_n.size() < 2 || distinct_d.size() < 2) {
    return Error{"observations must span at least two model sizes and two data budgets",
                 "scaling-fit"};
  }

  double lo_alpha = options.alpha_min;
  double hi_alpha = options.alpha_max;
  double lo_beta = options.beta_min;
  double hi_beta = options.beta_max;

  ScalingLaw best;
  double best_sse = std::numeric_limits<double>::infinity();

  for (int round = 0; round <= options.refine_rounds; ++round) {
    const double da = (hi_alpha - lo_alpha) / options.grid_steps;
    const double db = (hi_beta - lo_beta) / options.grid_steps;
    double round_best_alpha = best.alpha;
    double round_best_beta = best.beta;
    for (int i = 0; i <= options.grid_steps; ++i) {
      const double alpha = lo_alpha + da * i;
      for (int j = 0; j <= options.grid_steps; ++j) {
        const double beta = lo_beta + db * j;
        double e = 0;
        double a = 0;
        double b = 0;
        const double sse = solve_linear(points, alpha, beta, e, a, b);
        if (sse < best_sse) {
          best_sse = sse;
          best = ScalingLaw{e, a, alpha, b, beta, 0};
          round_best_alpha = alpha;
          round_best_beta = beta;
        }
      }
    }
    // Zoom into the winning cell for the next round.
    const double span_a = (hi_alpha - lo_alpha) / 4;
    const double span_b = (hi_beta - lo_beta) / 4;
    lo_alpha = std::max(options.alpha_min, round_best_alpha - span_a);
    hi_alpha = std::min(options.alpha_max, round_best_alpha + span_a);
    lo_beta = std::max(options.beta_min, round_best_beta - span_b);
    hi_beta = std::min(options.beta_max, round_best_beta + span_b);
  }

  if (!std::isfinite(best_sse)) {
    return Error{"no admissible fit found (negative coefficients everywhere)",
                 "scaling-fit"};
  }
  best.rmse = std::sqrt(best_sse / static_cast<double>(points.size()));
  return best;
}

Expected<ComputeOptimal> compute_optimal(const ScalingLaw& law, double flop_budget,
                                          double flops_per_param_sample) {
  if (flop_budget <= 0 || flops_per_param_sample <= 0) {
    return Error{"budget and FLOP factor must be positive", "compute-optimal"};
  }
  const double c = flop_budget / flops_per_param_sample;  // N·D product
  auto loss_at = [&](double log_n) {
    const double n = std::exp(log_n);
    return law.predict(n, c / n);
  };
  // Golden-section search: L(N, C/N) is unimodal in log N for this family
  // (sum of one decreasing and one increasing exponential in log N).
  double lo = std::log(1e6);
  double hi = std::log(1e13);
  constexpr double kPhi = 0.6180339887498949;
  double x1 = hi - kPhi * (hi - lo);
  double x2 = lo + kPhi * (hi - lo);
  double f1 = loss_at(x1);
  double f2 = loss_at(x2);
  for (int iter = 0; iter < 200 && hi - lo > 1e-10; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kPhi * (hi - lo);
      f1 = loss_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kPhi * (hi - lo);
      f2 = loss_at(x2);
    }
  }
  ComputeOptimal result;
  result.parameters = std::exp((lo + hi) / 2);
  result.samples = c / result.parameters;
  result.predicted_loss = law.predict(result.parameters, result.samples);
  return result;
}

}  // namespace provml::analysis
