// Online training advisor (paper Section 3.2: "an online provenance
// tracking process could give real-time guidelines in how to proceed during
// the training process, understanding when to stop. This would result in a
// more optimized use of compute hours, as the process could be stopped when
// a specific threshold of energy, compute, or performance is achieved").
//
// Feed the advisor one observation per epoch; it fits a power-law decay to
// the recent loss history, extrapolates the marginal improvement of the
// next epoch, and recommends stopping when that improvement no longer
// justifies its energy cost — or when hard budgets are hit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace provml::analysis {

struct AdvisorConfig {
  /// Stop when predicted relative loss improvement of the next epoch falls
  /// below this fraction (e.g. 0.002 = 0.2%).
  double min_relative_improvement = 0.002;
  /// Hard budgets; 0 disables the corresponding check.
  double energy_budget_j = 0;
  double time_budget_s = 0;
  /// Epochs needed before extrapolation is trusted.
  int warmup_epochs = 3;
  /// Consecutive below-threshold epochs required before recommending a
  /// convergence stop (smooths out loss jitter).
  int patience = 2;
  /// Loss target: stop as soon as it is reached (0 disables).
  double target_loss = 0;
};

enum class StopReason {
  kContinue,          ///< keep training
  kConverged,         ///< marginal improvement below threshold
  kTargetReached,     ///< loss target achieved
  kEnergyBudget,      ///< energy budget exhausted
  kTimeBudget,        ///< time budget exhausted
};

[[nodiscard]] const char* stop_reason_name(StopReason reason);

struct Advice {
  StopReason reason = StopReason::kContinue;
  bool should_stop = false;
  double predicted_next_loss = 0;      ///< extrapolated loss after one more epoch
  double predicted_improvement = 0;    ///< relative improvement of that epoch
};

class TrainingAdvisor {
 public:
  explicit TrainingAdvisor(AdvisorConfig config = {}) : config_(config) {}

  /// Records one finished epoch and returns the recommendation.
  Advice observe(int epoch, double loss, double cumulative_energy_j,
                 double cumulative_time_s);

  [[nodiscard]] const std::vector<double>& losses() const { return losses_; }

 private:
  /// Fits loss ≈ c · epoch^-p + floor over the observed history (floor
  /// taken as a fraction of the latest loss; c, p by log-log regression).
  [[nodiscard]] double extrapolate_next() const;

  AdvisorConfig config_;
  std::vector<double> losses_;
  int converged_streak_ = 0;
};

}  // namespace provml::analysis
