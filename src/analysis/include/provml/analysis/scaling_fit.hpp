// Analytical scaling-study estimation (paper Section 3.3, first approach:
// "utilizes an analytical approach to determine an estimate of the
// performance when scaling one of the three aforementioned factors").
// Fits the Chinchilla-shaped law
//     L(N, D) = E + A·N^-alpha + B·D^-beta
// to observed (parameters, samples, loss) triples harvested from
// provenance, then predicts loss for unseen configurations.
//
// The fit is linear in (E, A, B) once (alpha, beta) are fixed, so the
// solver grid-searches the exponents and solves a 3×3 least-squares system
// per candidate — robust, deterministic, no external dependencies.
#pragma once

#include <cstdint>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::analysis {

/// One observation harvested from a finished run.
struct ScalingPoint {
  double parameters = 0;    ///< model size N
  double samples_seen = 0;  ///< data budget D
  double loss = 0;          ///< observed final loss
};

/// The fitted law.
struct ScalingLaw {
  double e = 0;      ///< irreducible loss
  double a = 0;      ///< parameter-term coefficient
  double alpha = 0;  ///< parameter-term exponent
  double b = 0;      ///< data-term coefficient
  double beta = 0;   ///< data-term exponent
  double rmse = 0;   ///< root-mean-square residual of the fit

  [[nodiscard]] double predict(double parameters, double samples) const;

  /// Smallest data budget D such that predict(parameters, D) <= target,
  /// found by bisection; returns infinity when the target is below the
  /// asymptote E + A·N^-alpha.
  [[nodiscard]] double samples_to_reach(double parameters, double target_loss) const;
};

struct FitOptions {
  double alpha_min = 0.05, alpha_max = 0.8;
  double beta_min = 0.05, beta_max = 0.8;
  int grid_steps = 40;        ///< exponent grid resolution per axis
  int refine_rounds = 3;      ///< zoom-in rounds around the best cell
};

/// Fits the law to `points` (needs >= 4 points spanning at least two
/// distinct N and two distinct D values).
[[nodiscard]] Expected<ScalingLaw> fit_scaling_law(const std::vector<ScalingPoint>& points,
                                                   const FitOptions& options = {});

/// A compute-optimal allocation: the (N, D) split of a fixed FLOP budget
/// that minimizes the fitted law (the Chinchilla question applied to the
/// paper's scaling studies: "which configuration of parameters would be
/// more adequate").
struct ComputeOptimal {
  double parameters = 0;    ///< optimal model size N*
  double samples = 0;       ///< optimal data budget D*
  double predicted_loss = 0;
};

/// Minimizes law.predict(N, C / (k·N)) over N for a training budget of
/// `flop_budget` FLOPs, where `flops_per_param_sample` (k) converts N·D to
/// FLOPs (≈ 6 · tokens-per-sample for dense transformers). Golden-section
/// search over log N in [1e6, 1e13]. Errors on non-positive inputs.
[[nodiscard]] Expected<ComputeOptimal> compute_optimal(const ScalingLaw& law,
                                                       double flop_budget,
                                                       double flops_per_param_sample);

}  // namespace provml::analysis
