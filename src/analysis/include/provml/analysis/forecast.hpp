// Provenance-driven performance forecasting (paper Section 3.3, second
// approach: "A ML-based forecasting approach could give ... a more precise
// estimate ... with a single inference step, eliminating the trial and
// error phase"). A RunDatabase harvests feature vectors from finished-run
// PROV documents; a distance-weighted k-NN regressor predicts any numeric
// output (final loss, energy, wall time) for an unseen configuration.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "provml/common/expected.hpp"
#include "provml/prov/model.hpp"

namespace provml::analysis {

/// One historical run: numeric input features → numeric outputs. Both maps
/// come from the run's provml:Parameter entities (inputs keep role=input,
/// outputs role=output).
struct RunRecord {
  std::string run_name;
  std::map<std::string, double> features;
  std::map<std::string, double> outputs;
};

/// Extracts a record from a run document written by the core logger.
/// Non-numeric parameters are skipped (k-NN operates on numbers).
[[nodiscard]] Expected<RunRecord> harvest_record(const prov::Document& doc);

struct Prediction {
  double value = 0;
  double confidence = 0;  ///< 1 / (1 + mean neighbor distance); in (0, 1]
  std::vector<std::string> neighbors_used;
};

/// The knowledge base of prior runs.
class RunDatabase {
 public:
  void add(RunRecord record);
  [[nodiscard]] Status add_document(const prov::Document& doc);

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<RunRecord>& records() const { return records_; }

  /// Predicts `output_name` for `query` features using distance-weighted
  /// k-NN over records that carry that output. Features are z-normalized
  /// per dimension across the database; dimensions the query lacks are
  /// ignored. Errors when no record has the requested output.
  [[nodiscard]] Expected<Prediction> predict(
      const std::map<std::string, double>& query, const std::string& output_name,
      std::size_t k = 3) const;

 private:
  std::vector<RunRecord> records_;
};

}  // namespace provml::analysis
