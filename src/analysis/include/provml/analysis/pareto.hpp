// Pareto-front analysis over run outcomes — the operation behind the
// paper's Figure 3 reading: among all (loss, energy) outcomes, which
// configurations are not dominated? A run dominates another when it is no
// worse on every objective and strictly better on at least one (all
// objectives minimized).
#pragma once

#include <string>
#include <vector>

#include "provml/common/expected.hpp"

namespace provml::analysis {

/// One candidate: a label plus its objective values (all minimized).
struct ParetoPoint {
  std::string label;
  std::vector<double> objectives;
};

/// True when `a` dominates `b` (same objective count assumed).
[[nodiscard]] bool dominates(const ParetoPoint& a, const ParetoPoint& b);

/// The non-dominated subset, in input order. Errors when points disagree
/// on objective count or the set is empty.
[[nodiscard]] Expected<std::vector<ParetoPoint>> pareto_front(
    const std::vector<ParetoPoint>& points);

/// Scalarized best point: minimizes the product of objectives (the paper's
/// "loss times the total energy consumption"). Errors on empty input.
[[nodiscard]] Expected<ParetoPoint> best_by_product(
    const std::vector<ParetoPoint>& points);

}  // namespace provml::analysis
