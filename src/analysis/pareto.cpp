#include "provml/analysis/pareto.hpp"

#include <cmath>
#include <limits>

namespace provml::analysis {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  bool strictly_better_somewhere = false;
  for (std::size_t i = 0; i < a.objectives.size(); ++i) {
    if (a.objectives[i] > b.objectives[i]) return false;
    if (a.objectives[i] < b.objectives[i]) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

Expected<std::vector<ParetoPoint>> pareto_front(const std::vector<ParetoPoint>& points) {
  if (points.empty()) return Error{"no points", "pareto"};
  const std::size_t dims = points.front().objectives.size();
  if (dims == 0) return Error{"points need at least one objective", "pareto"};
  for (const ParetoPoint& p : points) {
    if (p.objectives.size() != dims) {
      return Error{"inconsistent objective count at '" + p.label + "'", "pareto"};
    }
    for (const double v : p.objectives) {
      if (!std::isfinite(v)) {
        return Error{"non-finite objective at '" + p.label + "'", "pareto"};
      }
    }
  }
  std::vector<ParetoPoint> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(points[i]);
  }
  return front;
}

Expected<ParetoPoint> best_by_product(const std::vector<ParetoPoint>& points) {
  if (points.empty()) return Error{"no points", "pareto"};
  double best = std::numeric_limits<double>::infinity();
  const ParetoPoint* winner = nullptr;
  for (const ParetoPoint& p : points) {
    double product = 1.0;
    for (const double v : p.objectives) product *= v;
    if (std::isfinite(product) && product < best) {
      best = product;
      winner = &p;
    }
  }
  if (winner == nullptr) return Error{"all products non-finite", "pareto"};
  return *winner;
}

}  // namespace provml::analysis
