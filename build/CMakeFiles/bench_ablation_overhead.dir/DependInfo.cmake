
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_overhead.cpp" "CMakeFiles/bench_ablation_overhead.dir/bench/bench_ablation_overhead.cpp.o" "gcc" "CMakeFiles/bench_ablation_overhead.dir/bench/bench_ablation_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/provml_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/provml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/provml_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/cli/CMakeFiles/provml_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/provml_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/graphstore/CMakeFiles/provml_graphstore.dir/DependInfo.cmake"
  "/root/repo/build/src/rocrate/CMakeFiles/provml_rocrate.dir/DependInfo.cmake"
  "/root/repo/build/src/explorer/CMakeFiles/provml_explorer.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/provml_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workflow/CMakeFiles/provml_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/provml_prov.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/provml_json.dir/DependInfo.cmake"
  "/root/repo/build/src/sysmon/CMakeFiles/provml_sysmon.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
