file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overhead.dir/bench/bench_ablation_overhead.cpp.o"
  "CMakeFiles/bench_ablation_overhead.dir/bench/bench_ablation_overhead.cpp.o.d"
  "bench/bench_ablation_overhead"
  "bench/bench_ablation_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
