# Empty compiler generated dependencies file for bench_ablation_workflow.
# This may be replaced when dependencies are built.
