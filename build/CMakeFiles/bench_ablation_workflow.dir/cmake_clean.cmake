file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_workflow.dir/bench/bench_ablation_workflow.cpp.o"
  "CMakeFiles/bench_ablation_workflow.dir/bench/bench_ablation_workflow.cpp.o.d"
  "bench/bench_ablation_workflow"
  "bench/bench_ablation_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
