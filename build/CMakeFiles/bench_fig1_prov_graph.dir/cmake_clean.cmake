file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_prov_graph.dir/bench/bench_fig1_prov_graph.cpp.o"
  "CMakeFiles/bench_fig1_prov_graph.dir/bench/bench_fig1_prov_graph.cpp.o.d"
  "bench/bench_fig1_prov_graph"
  "bench/bench_fig1_prov_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_prov_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
