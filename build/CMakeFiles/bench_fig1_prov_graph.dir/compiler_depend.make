# Empty compiler generated dependencies file for bench_fig1_prov_graph.
# This may be replaced when dependencies are built.
