file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_data_model.dir/bench/bench_fig2_data_model.cpp.o"
  "CMakeFiles/bench_fig2_data_model.dir/bench/bench_fig2_data_model.cpp.o.d"
  "bench/bench_fig2_data_model"
  "bench/bench_fig2_data_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_data_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
