file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sweep_threads.dir/bench/bench_ablation_sweep_threads.cpp.o"
  "CMakeFiles/bench_ablation_sweep_threads.dir/bench/bench_ablation_sweep_threads.cpp.o.d"
  "bench/bench_ablation_sweep_threads"
  "bench/bench_ablation_sweep_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sweep_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
