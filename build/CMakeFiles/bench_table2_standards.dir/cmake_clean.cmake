file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_standards.dir/bench/bench_table2_standards.cpp.o"
  "CMakeFiles/bench_table2_standards.dir/bench/bench_table2_standards.cpp.o.d"
  "bench/bench_table2_standards"
  "bench/bench_table2_standards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_standards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
