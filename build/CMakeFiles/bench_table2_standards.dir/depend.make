# Empty dependencies file for bench_table2_standards.
# This may be replaced when dependencies are built.
