file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_graphstore.dir/bench/bench_ablation_graphstore.cpp.o"
  "CMakeFiles/bench_ablation_graphstore.dir/bench/bench_ablation_graphstore.cpp.o.d"
  "bench/bench_ablation_graphstore"
  "bench/bench_ablation_graphstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_graphstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
