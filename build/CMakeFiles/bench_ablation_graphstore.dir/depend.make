# Empty dependencies file for bench_ablation_graphstore.
# This may be replaced when dependencies are built.
