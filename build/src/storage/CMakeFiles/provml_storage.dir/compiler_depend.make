# Empty compiler generated dependencies file for provml_storage.
# This may be replaced when dependencies are built.
