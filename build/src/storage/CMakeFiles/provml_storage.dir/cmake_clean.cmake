file(REMOVE_RECURSE
  "CMakeFiles/provml_storage.dir/aggregate.cpp.o"
  "CMakeFiles/provml_storage.dir/aggregate.cpp.o.d"
  "CMakeFiles/provml_storage.dir/json_store.cpp.o"
  "CMakeFiles/provml_storage.dir/json_store.cpp.o.d"
  "CMakeFiles/provml_storage.dir/netcdf_store.cpp.o"
  "CMakeFiles/provml_storage.dir/netcdf_store.cpp.o.d"
  "CMakeFiles/provml_storage.dir/series.cpp.o"
  "CMakeFiles/provml_storage.dir/series.cpp.o.d"
  "CMakeFiles/provml_storage.dir/store.cpp.o"
  "CMakeFiles/provml_storage.dir/store.cpp.o.d"
  "CMakeFiles/provml_storage.dir/zarr_store.cpp.o"
  "CMakeFiles/provml_storage.dir/zarr_store.cpp.o.d"
  "libprovml_storage.a"
  "libprovml_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
