
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/aggregate.cpp" "src/storage/CMakeFiles/provml_storage.dir/aggregate.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/aggregate.cpp.o.d"
  "/root/repo/src/storage/json_store.cpp" "src/storage/CMakeFiles/provml_storage.dir/json_store.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/json_store.cpp.o.d"
  "/root/repo/src/storage/netcdf_store.cpp" "src/storage/CMakeFiles/provml_storage.dir/netcdf_store.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/netcdf_store.cpp.o.d"
  "/root/repo/src/storage/series.cpp" "src/storage/CMakeFiles/provml_storage.dir/series.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/series.cpp.o.d"
  "/root/repo/src/storage/store.cpp" "src/storage/CMakeFiles/provml_storage.dir/store.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/store.cpp.o.d"
  "/root/repo/src/storage/zarr_store.cpp" "src/storage/CMakeFiles/provml_storage.dir/zarr_store.cpp.o" "gcc" "src/storage/CMakeFiles/provml_storage.dir/zarr_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/provml_json.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/provml_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
