file(REMOVE_RECURSE
  "libprovml_storage.a"
)
