file(REMOVE_RECURSE
  "CMakeFiles/provml_cli.dir/cli.cpp.o"
  "CMakeFiles/provml_cli.dir/cli.cpp.o.d"
  "libprovml_cli.a"
  "libprovml_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
