# Empty dependencies file for provml_cli.
# This may be replaced when dependencies are built.
