file(REMOVE_RECURSE
  "libprovml_cli.a"
)
