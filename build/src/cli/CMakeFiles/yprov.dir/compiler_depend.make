# Empty compiler generated dependencies file for yprov.
# This may be replaced when dependencies are built.
