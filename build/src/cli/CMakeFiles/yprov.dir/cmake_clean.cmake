file(REMOVE_RECURSE
  "CMakeFiles/yprov.dir/yprov_main.cpp.o"
  "CMakeFiles/yprov.dir/yprov_main.cpp.o.d"
  "yprov"
  "yprov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yprov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
