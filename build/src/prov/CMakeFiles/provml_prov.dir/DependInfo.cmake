
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prov/constraints.cpp" "src/prov/CMakeFiles/provml_prov.dir/constraints.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/constraints.cpp.o.d"
  "/root/repo/src/prov/dot.cpp" "src/prov/CMakeFiles/provml_prov.dir/dot.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/dot.cpp.o.d"
  "/root/repo/src/prov/model.cpp" "src/prov/CMakeFiles/provml_prov.dir/model.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/model.cpp.o.d"
  "/root/repo/src/prov/prov_json.cpp" "src/prov/CMakeFiles/provml_prov.dir/prov_json.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/prov_json.cpp.o.d"
  "/root/repo/src/prov/prov_n.cpp" "src/prov/CMakeFiles/provml_prov.dir/prov_n.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/prov_n.cpp.o.d"
  "/root/repo/src/prov/prov_xml.cpp" "src/prov/CMakeFiles/provml_prov.dir/prov_xml.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/prov_xml.cpp.o.d"
  "/root/repo/src/prov/turtle.cpp" "src/prov/CMakeFiles/provml_prov.dir/turtle.cpp.o" "gcc" "src/prov/CMakeFiles/provml_prov.dir/turtle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/provml_json.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
