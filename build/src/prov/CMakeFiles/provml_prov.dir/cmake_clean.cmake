file(REMOVE_RECURSE
  "CMakeFiles/provml_prov.dir/constraints.cpp.o"
  "CMakeFiles/provml_prov.dir/constraints.cpp.o.d"
  "CMakeFiles/provml_prov.dir/dot.cpp.o"
  "CMakeFiles/provml_prov.dir/dot.cpp.o.d"
  "CMakeFiles/provml_prov.dir/model.cpp.o"
  "CMakeFiles/provml_prov.dir/model.cpp.o.d"
  "CMakeFiles/provml_prov.dir/prov_json.cpp.o"
  "CMakeFiles/provml_prov.dir/prov_json.cpp.o.d"
  "CMakeFiles/provml_prov.dir/prov_n.cpp.o"
  "CMakeFiles/provml_prov.dir/prov_n.cpp.o.d"
  "CMakeFiles/provml_prov.dir/prov_xml.cpp.o"
  "CMakeFiles/provml_prov.dir/prov_xml.cpp.o.d"
  "CMakeFiles/provml_prov.dir/turtle.cpp.o"
  "CMakeFiles/provml_prov.dir/turtle.cpp.o.d"
  "libprovml_prov.a"
  "libprovml_prov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_prov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
