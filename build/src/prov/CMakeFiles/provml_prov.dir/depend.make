# Empty dependencies file for provml_prov.
# This may be replaced when dependencies are built.
