file(REMOVE_RECURSE
  "libprovml_prov.a"
)
