# Empty dependencies file for provml_explorer.
# This may be replaced when dependencies are built.
