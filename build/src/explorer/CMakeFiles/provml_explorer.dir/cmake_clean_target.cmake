file(REMOVE_RECURSE
  "libprovml_explorer.a"
)
