file(REMOVE_RECURSE
  "CMakeFiles/provml_explorer.dir/diff.cpp.o"
  "CMakeFiles/provml_explorer.dir/diff.cpp.o.d"
  "CMakeFiles/provml_explorer.dir/lineage.cpp.o"
  "CMakeFiles/provml_explorer.dir/lineage.cpp.o.d"
  "CMakeFiles/provml_explorer.dir/reproduce.cpp.o"
  "CMakeFiles/provml_explorer.dir/reproduce.cpp.o.d"
  "CMakeFiles/provml_explorer.dir/stats.cpp.o"
  "CMakeFiles/provml_explorer.dir/stats.cpp.o.d"
  "CMakeFiles/provml_explorer.dir/subgraph.cpp.o"
  "CMakeFiles/provml_explorer.dir/subgraph.cpp.o.d"
  "CMakeFiles/provml_explorer.dir/timeline.cpp.o"
  "CMakeFiles/provml_explorer.dir/timeline.cpp.o.d"
  "libprovml_explorer.a"
  "libprovml_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
