
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explorer/diff.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/diff.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/diff.cpp.o.d"
  "/root/repo/src/explorer/lineage.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/lineage.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/lineage.cpp.o.d"
  "/root/repo/src/explorer/reproduce.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/reproduce.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/reproduce.cpp.o.d"
  "/root/repo/src/explorer/stats.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/stats.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/stats.cpp.o.d"
  "/root/repo/src/explorer/subgraph.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/subgraph.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/subgraph.cpp.o.d"
  "/root/repo/src/explorer/timeline.cpp" "src/explorer/CMakeFiles/provml_explorer.dir/timeline.cpp.o" "gcc" "src/explorer/CMakeFiles/provml_explorer.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/provml_json.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/provml_prov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
