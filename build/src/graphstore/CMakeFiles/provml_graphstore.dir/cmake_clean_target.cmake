file(REMOVE_RECURSE
  "libprovml_graphstore.a"
)
