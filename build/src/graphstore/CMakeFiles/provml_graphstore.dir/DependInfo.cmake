
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphstore/graph.cpp" "src/graphstore/CMakeFiles/provml_graphstore.dir/graph.cpp.o" "gcc" "src/graphstore/CMakeFiles/provml_graphstore.dir/graph.cpp.o.d"
  "/root/repo/src/graphstore/ingest.cpp" "src/graphstore/CMakeFiles/provml_graphstore.dir/ingest.cpp.o" "gcc" "src/graphstore/CMakeFiles/provml_graphstore.dir/ingest.cpp.o.d"
  "/root/repo/src/graphstore/query.cpp" "src/graphstore/CMakeFiles/provml_graphstore.dir/query.cpp.o" "gcc" "src/graphstore/CMakeFiles/provml_graphstore.dir/query.cpp.o.d"
  "/root/repo/src/graphstore/service.cpp" "src/graphstore/CMakeFiles/provml_graphstore.dir/service.cpp.o" "gcc" "src/graphstore/CMakeFiles/provml_graphstore.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/provml_json.dir/DependInfo.cmake"
  "/root/repo/build/src/prov/CMakeFiles/provml_prov.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
