# Empty compiler generated dependencies file for provml_graphstore.
# This may be replaced when dependencies are built.
