file(REMOVE_RECURSE
  "CMakeFiles/provml_graphstore.dir/graph.cpp.o"
  "CMakeFiles/provml_graphstore.dir/graph.cpp.o.d"
  "CMakeFiles/provml_graphstore.dir/ingest.cpp.o"
  "CMakeFiles/provml_graphstore.dir/ingest.cpp.o.d"
  "CMakeFiles/provml_graphstore.dir/query.cpp.o"
  "CMakeFiles/provml_graphstore.dir/query.cpp.o.d"
  "CMakeFiles/provml_graphstore.dir/service.cpp.o"
  "CMakeFiles/provml_graphstore.dir/service.cpp.o.d"
  "libprovml_graphstore.a"
  "libprovml_graphstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_graphstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
