file(REMOVE_RECURSE
  "libprovml_rocrate.a"
)
