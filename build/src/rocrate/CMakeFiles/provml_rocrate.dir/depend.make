# Empty dependencies file for provml_rocrate.
# This may be replaced when dependencies are built.
