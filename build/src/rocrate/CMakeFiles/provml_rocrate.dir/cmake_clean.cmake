file(REMOVE_RECURSE
  "CMakeFiles/provml_rocrate.dir/crate.cpp.o"
  "CMakeFiles/provml_rocrate.dir/crate.cpp.o.d"
  "libprovml_rocrate.a"
  "libprovml_rocrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_rocrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
