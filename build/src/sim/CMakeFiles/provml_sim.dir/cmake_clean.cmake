file(REMOVE_RECURSE
  "CMakeFiles/provml_sim.dir/cluster.cpp.o"
  "CMakeFiles/provml_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/provml_sim.dir/ddp.cpp.o"
  "CMakeFiles/provml_sim.dir/ddp.cpp.o.d"
  "CMakeFiles/provml_sim.dir/models.cpp.o"
  "CMakeFiles/provml_sim.dir/models.cpp.o.d"
  "CMakeFiles/provml_sim.dir/sweep.cpp.o"
  "CMakeFiles/provml_sim.dir/sweep.cpp.o.d"
  "CMakeFiles/provml_sim.dir/thread_pool.cpp.o"
  "CMakeFiles/provml_sim.dir/thread_pool.cpp.o.d"
  "CMakeFiles/provml_sim.dir/trainer.cpp.o"
  "CMakeFiles/provml_sim.dir/trainer.cpp.o.d"
  "libprovml_sim.a"
  "libprovml_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
