file(REMOVE_RECURSE
  "libprovml_sim.a"
)
