# Empty compiler generated dependencies file for provml_sim.
# This may be replaced when dependencies are built.
