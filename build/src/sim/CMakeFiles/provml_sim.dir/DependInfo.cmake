
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/provml_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/ddp.cpp" "src/sim/CMakeFiles/provml_sim.dir/ddp.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/ddp.cpp.o.d"
  "/root/repo/src/sim/models.cpp" "src/sim/CMakeFiles/provml_sim.dir/models.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/models.cpp.o.d"
  "/root/repo/src/sim/sweep.cpp" "src/sim/CMakeFiles/provml_sim.dir/sweep.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/sweep.cpp.o.d"
  "/root/repo/src/sim/thread_pool.cpp" "src/sim/CMakeFiles/provml_sim.dir/thread_pool.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/thread_pool.cpp.o.d"
  "/root/repo/src/sim/trainer.cpp" "src/sim/CMakeFiles/provml_sim.dir/trainer.cpp.o" "gcc" "src/sim/CMakeFiles/provml_sim.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
