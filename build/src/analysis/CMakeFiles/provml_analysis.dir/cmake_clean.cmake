file(REMOVE_RECURSE
  "CMakeFiles/provml_analysis.dir/advisor.cpp.o"
  "CMakeFiles/provml_analysis.dir/advisor.cpp.o.d"
  "CMakeFiles/provml_analysis.dir/forecast.cpp.o"
  "CMakeFiles/provml_analysis.dir/forecast.cpp.o.d"
  "CMakeFiles/provml_analysis.dir/pareto.cpp.o"
  "CMakeFiles/provml_analysis.dir/pareto.cpp.o.d"
  "CMakeFiles/provml_analysis.dir/scaling_fit.cpp.o"
  "CMakeFiles/provml_analysis.dir/scaling_fit.cpp.o.d"
  "libprovml_analysis.a"
  "libprovml_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
