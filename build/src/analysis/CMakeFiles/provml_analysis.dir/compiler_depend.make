# Empty compiler generated dependencies file for provml_analysis.
# This may be replaced when dependencies are built.
