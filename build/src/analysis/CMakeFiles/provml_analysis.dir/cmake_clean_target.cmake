file(REMOVE_RECURSE
  "libprovml_analysis.a"
)
