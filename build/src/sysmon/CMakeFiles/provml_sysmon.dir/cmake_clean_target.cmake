file(REMOVE_RECURSE
  "libprovml_sysmon.a"
)
