file(REMOVE_RECURSE
  "CMakeFiles/provml_sysmon.dir/energy.cpp.o"
  "CMakeFiles/provml_sysmon.dir/energy.cpp.o.d"
  "CMakeFiles/provml_sysmon.dir/gpu_sim.cpp.o"
  "CMakeFiles/provml_sysmon.dir/gpu_sim.cpp.o.d"
  "CMakeFiles/provml_sysmon.dir/io_collectors.cpp.o"
  "CMakeFiles/provml_sysmon.dir/io_collectors.cpp.o.d"
  "CMakeFiles/provml_sysmon.dir/proc_collectors.cpp.o"
  "CMakeFiles/provml_sysmon.dir/proc_collectors.cpp.o.d"
  "CMakeFiles/provml_sysmon.dir/sampler.cpp.o"
  "CMakeFiles/provml_sysmon.dir/sampler.cpp.o.d"
  "libprovml_sysmon.a"
  "libprovml_sysmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_sysmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
