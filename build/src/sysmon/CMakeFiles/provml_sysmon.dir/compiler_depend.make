# Empty compiler generated dependencies file for provml_sysmon.
# This may be replaced when dependencies are built.
