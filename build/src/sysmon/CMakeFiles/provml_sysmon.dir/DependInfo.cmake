
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysmon/energy.cpp" "src/sysmon/CMakeFiles/provml_sysmon.dir/energy.cpp.o" "gcc" "src/sysmon/CMakeFiles/provml_sysmon.dir/energy.cpp.o.d"
  "/root/repo/src/sysmon/gpu_sim.cpp" "src/sysmon/CMakeFiles/provml_sysmon.dir/gpu_sim.cpp.o" "gcc" "src/sysmon/CMakeFiles/provml_sysmon.dir/gpu_sim.cpp.o.d"
  "/root/repo/src/sysmon/io_collectors.cpp" "src/sysmon/CMakeFiles/provml_sysmon.dir/io_collectors.cpp.o" "gcc" "src/sysmon/CMakeFiles/provml_sysmon.dir/io_collectors.cpp.o.d"
  "/root/repo/src/sysmon/proc_collectors.cpp" "src/sysmon/CMakeFiles/provml_sysmon.dir/proc_collectors.cpp.o" "gcc" "src/sysmon/CMakeFiles/provml_sysmon.dir/proc_collectors.cpp.o.d"
  "/root/repo/src/sysmon/sampler.cpp" "src/sysmon/CMakeFiles/provml_sysmon.dir/sampler.cpp.o" "gcc" "src/sysmon/CMakeFiles/provml_sysmon.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
