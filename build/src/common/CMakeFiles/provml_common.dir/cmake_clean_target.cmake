file(REMOVE_RECURSE
  "libprovml_common.a"
)
