file(REMOVE_RECURSE
  "CMakeFiles/provml_common.dir/strings.cpp.o"
  "CMakeFiles/provml_common.dir/strings.cpp.o.d"
  "libprovml_common.a"
  "libprovml_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
