# Empty compiler generated dependencies file for provml_common.
# This may be replaced when dependencies are built.
