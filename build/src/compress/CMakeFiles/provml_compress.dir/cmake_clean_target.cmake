file(REMOVE_RECURSE
  "libprovml_compress.a"
)
