file(REMOVE_RECURSE
  "CMakeFiles/provml_compress.dir/container.cpp.o"
  "CMakeFiles/provml_compress.dir/container.cpp.o.d"
  "CMakeFiles/provml_compress.dir/crc32.cpp.o"
  "CMakeFiles/provml_compress.dir/crc32.cpp.o.d"
  "CMakeFiles/provml_compress.dir/lzss.cpp.o"
  "CMakeFiles/provml_compress.dir/lzss.cpp.o.d"
  "CMakeFiles/provml_compress.dir/rle.cpp.o"
  "CMakeFiles/provml_compress.dir/rle.cpp.o.d"
  "CMakeFiles/provml_compress.dir/varint.cpp.o"
  "CMakeFiles/provml_compress.dir/varint.cpp.o.d"
  "libprovml_compress.a"
  "libprovml_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
