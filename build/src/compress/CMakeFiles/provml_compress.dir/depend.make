# Empty dependencies file for provml_compress.
# This may be replaced when dependencies are built.
