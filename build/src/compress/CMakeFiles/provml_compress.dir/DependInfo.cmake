
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/container.cpp" "src/compress/CMakeFiles/provml_compress.dir/container.cpp.o" "gcc" "src/compress/CMakeFiles/provml_compress.dir/container.cpp.o.d"
  "/root/repo/src/compress/crc32.cpp" "src/compress/CMakeFiles/provml_compress.dir/crc32.cpp.o" "gcc" "src/compress/CMakeFiles/provml_compress.dir/crc32.cpp.o.d"
  "/root/repo/src/compress/lzss.cpp" "src/compress/CMakeFiles/provml_compress.dir/lzss.cpp.o" "gcc" "src/compress/CMakeFiles/provml_compress.dir/lzss.cpp.o.d"
  "/root/repo/src/compress/rle.cpp" "src/compress/CMakeFiles/provml_compress.dir/rle.cpp.o" "gcc" "src/compress/CMakeFiles/provml_compress.dir/rle.cpp.o.d"
  "/root/repo/src/compress/varint.cpp" "src/compress/CMakeFiles/provml_compress.dir/varint.cpp.o" "gcc" "src/compress/CMakeFiles/provml_compress.dir/varint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/provml_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
