# Empty compiler generated dependencies file for provml_json.
# This may be replaced when dependencies are built.
