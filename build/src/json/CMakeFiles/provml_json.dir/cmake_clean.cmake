file(REMOVE_RECURSE
  "CMakeFiles/provml_json.dir/parse.cpp.o"
  "CMakeFiles/provml_json.dir/parse.cpp.o.d"
  "CMakeFiles/provml_json.dir/value.cpp.o"
  "CMakeFiles/provml_json.dir/value.cpp.o.d"
  "CMakeFiles/provml_json.dir/write.cpp.o"
  "CMakeFiles/provml_json.dir/write.cpp.o.d"
  "libprovml_json.a"
  "libprovml_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
