file(REMOVE_RECURSE
  "libprovml_json.a"
)
