# Empty compiler generated dependencies file for provml_core.
# This may be replaced when dependencies are built.
