file(REMOVE_RECURSE
  "CMakeFiles/provml_core.dir/mlflow_compat.cpp.o"
  "CMakeFiles/provml_core.dir/mlflow_compat.cpp.o.d"
  "CMakeFiles/provml_core.dir/run.cpp.o"
  "CMakeFiles/provml_core.dir/run.cpp.o.d"
  "libprovml_core.a"
  "libprovml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
