file(REMOVE_RECURSE
  "libprovml_core.a"
)
