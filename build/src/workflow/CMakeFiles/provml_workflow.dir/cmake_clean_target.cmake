file(REMOVE_RECURSE
  "libprovml_workflow.a"
)
