file(REMOVE_RECURSE
  "CMakeFiles/provml_workflow.dir/workflow.cpp.o"
  "CMakeFiles/provml_workflow.dir/workflow.cpp.o.d"
  "libprovml_workflow.a"
  "libprovml_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provml_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
