# Empty compiler generated dependencies file for provml_workflow.
# This may be replaced when dependencies are built.
