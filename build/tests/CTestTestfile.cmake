# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_json[1]_include.cmake")
include("/root/repo/build/tests/test_compress[1]_include.cmake")
include("/root/repo/build/tests/test_prov[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_sysmon[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_graphstore[1]_include.cmake")
include("/root/repo/build/tests/test_rocrate[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_explorer[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_query[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_workflow[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
