file(REMOVE_RECURSE
  "CMakeFiles/test_graphstore.dir/test_graphstore.cpp.o"
  "CMakeFiles/test_graphstore.dir/test_graphstore.cpp.o.d"
  "test_graphstore"
  "test_graphstore.pdb"
  "test_graphstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
