# Empty compiler generated dependencies file for test_graphstore.
# This may be replaced when dependencies are built.
