# Empty dependencies file for test_prov.
# This may be replaced when dependencies are built.
