file(REMOVE_RECURSE
  "CMakeFiles/test_rocrate.dir/test_rocrate.cpp.o"
  "CMakeFiles/test_rocrate.dir/test_rocrate.cpp.o.d"
  "test_rocrate"
  "test_rocrate.pdb"
  "test_rocrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rocrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
