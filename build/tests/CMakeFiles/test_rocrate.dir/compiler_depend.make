# Empty compiler generated dependencies file for test_rocrate.
# This may be replaced when dependencies are built.
