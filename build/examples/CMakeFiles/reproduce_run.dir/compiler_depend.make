# Empty compiler generated dependencies file for reproduce_run.
# This may be replaced when dependencies are built.
