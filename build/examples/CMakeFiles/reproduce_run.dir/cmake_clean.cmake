file(REMOVE_RECURSE
  "CMakeFiles/reproduce_run.dir/reproduce_run.cpp.o"
  "CMakeFiles/reproduce_run.dir/reproduce_run.cpp.o.d"
  "reproduce_run"
  "reproduce_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduce_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
