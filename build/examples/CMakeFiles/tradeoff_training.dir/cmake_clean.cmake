file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_training.dir/tradeoff_training.cpp.o"
  "CMakeFiles/tradeoff_training.dir/tradeoff_training.cpp.o.d"
  "tradeoff_training"
  "tradeoff_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
