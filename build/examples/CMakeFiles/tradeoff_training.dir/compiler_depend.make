# Empty compiler generated dependencies file for tradeoff_training.
# This may be replaced when dependencies are built.
