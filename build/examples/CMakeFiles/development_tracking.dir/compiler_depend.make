# Empty compiler generated dependencies file for development_tracking.
# This may be replaced when dependencies are built.
