file(REMOVE_RECURSE
  "CMakeFiles/development_tracking.dir/development_tracking.cpp.o"
  "CMakeFiles/development_tracking.dir/development_tracking.cpp.o.d"
  "development_tracking"
  "development_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/development_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
