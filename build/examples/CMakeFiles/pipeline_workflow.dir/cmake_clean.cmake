file(REMOVE_RECURSE
  "CMakeFiles/pipeline_workflow.dir/pipeline_workflow.cpp.o"
  "CMakeFiles/pipeline_workflow.dir/pipeline_workflow.cpp.o.d"
  "pipeline_workflow"
  "pipeline_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
